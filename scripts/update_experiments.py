"""Refresh the measured-result blocks of EXPERIMENTS.md from engine JSON runs.

The experiment engine persists every scenario run as a structured JSON
record under ``results/runs/<scenario>.json`` (see ``repro.eval.engine``).
This helper renders those records with ``repro.eval.tables.render_run`` and
splices the printable blocks into the marker sections of EXPERIMENTS.md::

    <!-- BEGIN RESULTS: table3 -->
    ... regenerated content ...
    <!-- END RESULTS: table3 -->

No pytest stdout scraping is involved: re-running a scenario (CLI or bench
suite) rewrites its JSON, and re-running this script refreshes the document
idempotently.

Usage:  python scripts/update_experiments.py [results_dir] [EXPERIMENTS.md]
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.eval.engine import load_runs  # noqa: E402
from repro.eval.tables import render_run  # noqa: E402

#: Marker key -> scenario-name prefix whose runs fill the section.
SECTIONS = {
    "table3": "table3",
    "table4": "table4",
    "fig3": "fig3_geometry",
    "fig4": "fig4_saga_sample",
    "ablation_epsilon": "ablation_epsilon",
    "ablation_upsampling": "ablation_upsampling",
    "attack_budget_curve": "attack_budget_curve",
    "robustness_curve": "robustness_curve",
    "federated": "fl_",
    "serving_throughput": "serving_throughput",
    "serving_latency_slo": "serving_latency_slo",
    "serving_tail_latency": "serving_tail_latency",
    "serving_soak": "serving_soak",
}

_MARKER = "<!-- BEGIN RESULTS: {key} -->"
_END_MARKER = "<!-- END RESULTS: {key} -->"


def render_section(records: dict[str, dict], prefix: str) -> str | None:
    """Render every run whose scenario name starts with ``prefix``."""
    blocks = []
    for name in sorted(records):
        if not name.startswith(prefix):
            continue
        record = records[name]
        rendered = render_run(record)
        meta = (
            f"(scenario {name}, scale={record.get('scale', '?')}, "
            f"seed={record.get('seed', '?')}, {record.get('created_at', 'unknown time')})"
        )
        blocks.append(f"```\n{rendered}\n```\n{meta}")
    if not blocks:
        return None
    return "\n\n".join(blocks)


def render_bench_trajectory(repo_root: Path) -> str | None:
    """Markdown table of every ``BENCH_<area>.json`` at the repository root.

    One row per metric, grouped by area, pinned to the git SHA the bench ran
    under — the same files ``scripts/compare_bench.py`` gates CI on, so the
    document always shows the numbers the gate saw last.
    """
    rows = []
    for path in sorted(repo_root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            continue
        sha = str(payload.get("git_sha", "?"))[:12]
        threads = payload.get("replay_threads", "?")
        for name, value in sorted(metrics.items()):
            rows.append(
                f"| {payload.get('area', path.stem)} | {name} | {float(value):,.2f} "
                f"| {sha} | {threads} |"
            )
    if not rows:
        return None
    header = (
        "| area | metric | value | git | replay threads |\n"
        "|------|--------|------:|-----|---------------:|"
    )
    return "\n".join([header, *rows])


def splice(document: str, key: str, content: str) -> str:
    """Replace the marker section ``key`` with ``content`` (idempotent)."""
    begin = _MARKER.format(key=key)
    end = _END_MARKER.format(key=key)
    pattern = re.compile(re.escape(begin) + r".*?" + re.escape(end), flags=re.DOTALL)
    if not pattern.search(document):
        return document
    return pattern.sub(f"{begin}\n{content}\n{end}", document)


def main() -> None:
    results_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else _REPO_ROOT / "results"
    experiments_path = Path(sys.argv[2]) if len(sys.argv) > 2 else _REPO_ROOT / "EXPERIMENTS.md"
    records = load_runs(results_dir)
    if not records:
        print(f"no run records under {results_dir}/runs — run `python -m repro.run <scenario>` first")
        raise SystemExit(1)
    document = experiments_path.read_text()
    updated, missing = [], []
    for key, prefix in SECTIONS.items():
        content = render_section(records, prefix)
        if content is None:
            missing.append(key)
            continue
        replaced = splice(document, key, content)
        if replaced != document:
            updated.append(key)
        document = replaced
    trajectory = render_bench_trajectory(_REPO_ROOT)
    if trajectory is None:
        missing.append("bench_trajectory")
    else:
        replaced = splice(document, "bench_trajectory", trajectory)
        if replaced != document:
            updated.append("bench_trajectory")
        document = replaced
    experiments_path.write_text(document)
    print(f"EXPERIMENTS.md refreshed from {results_dir}/runs: updated {updated or 'nothing'}")
    if missing:
        print(f"sections without runs yet: {missing}")


if __name__ == "__main__":
    main()
