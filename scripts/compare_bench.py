#!/usr/bin/env python
"""Gate a revision's BENCH_<area>.json against the previous revision's.

Usage::

    python scripts/compare_bench.py BENCH_ops.json previous/BENCH_ops.json
    python scripts/compare_bench.py current.json previous.json --tolerance 0.20

Each ``BENCH_<area>.json`` (written by ``benchmarks/conftest.py``'s
``write_bench_trajectory``) pins one revision's normalized metrics next to
its git SHA, replay thread count and dtype.  This script diffs two such
files metric by metric and **exits 1** when any metric regressed by more
than the tolerance (default 15%), so CI can fail a PR that slows the
replay executor or the serving path down.

Direction is inferred from the metric name: ``*_seconds`` and ``*_us`` are
lower-is-better (time), as is ``*shed_rate`` (load shedding); everything
else — throughputs, speedups, widths — is higher-is-better.  Metrics present in only one file are reported but
never gate (a new benchmark must not fail the first revision that adds it).
When both files record a ``cpu_count`` and they disagree, the runs came
from different hosts — parallel-replay speedups are not comparable, so the
diff is printed for the record but nothing gates.  The same skip applies
when both files record a ``shard_config`` and they disagree: numbers taken
under different FLOP floors or forced fan-out are not the same benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Name suffixes marking a metric as lower-is-better.
_LOWER_IS_BETTER_SUFFIXES = ("_seconds", "_us", "shed_rate", "_bytes_on_wire")


def lower_is_better(name: str) -> bool:
    """Whether a smaller value of this metric is an improvement."""
    return name.endswith(_LOWER_IS_BETTER_SUFFIXES)


def regression_ratio(name: str, current: float, previous: float) -> float:
    """Fractional regression of ``current`` vs ``previous`` (negative = better).

    Normalized so that +0.15 always means "15% worse", whichever direction
    the metric improves in.
    """
    if previous == 0:
        return 0.0
    change = (current - previous) / abs(previous)
    return change if lower_is_better(name) else -change


def load_metrics(path: Path) -> dict:
    payload = json.loads(path.read_text())
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: not a BENCH trajectory file (no 'metrics' object)")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="this revision's BENCH_<area>.json")
    parser.add_argument("previous", type=Path, help="the baseline BENCH_<area>.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="maximum allowed fractional regression per metric (default 0.15)",
    )
    args = parser.parse_args(argv)

    current = load_metrics(args.current)
    previous = load_metrics(args.previous)
    print(
        f"comparing {current.get('area', '?')}: "
        f"{previous.get('git_sha', '?')[:12]} -> {current.get('git_sha', '?')[:12]} "
        f"(threads {previous.get('replay_threads')} -> {current.get('replay_threads')}, "
        f"tolerance {args.tolerance:.0%})"
    )
    cpu_now = current.get("cpu_count")
    cpu_then = previous.get("cpu_count")
    gated = True
    if cpu_now is not None and cpu_then is not None and cpu_now != cpu_then:
        gated = False
        print(
            f"cpu_count changed ({cpu_then} -> {cpu_now}): different hosts, "
            "reporting only — no metric gates this comparison"
        )
    shard_now = current.get("shard_config")
    shard_then = previous.get("shard_config")
    if shard_now is not None and shard_then is not None and shard_now != shard_then:
        gated = False
        print(
            f"shard_config changed ({shard_then} -> {shard_now}): different "
            "sharding regimes, reporting only — no metric gates this comparison"
        )

    failures = []
    names = sorted(set(current["metrics"]) | set(previous["metrics"]))
    for name in names:
        now = current["metrics"].get(name)
        then = previous["metrics"].get(name)
        if now is None or then is None:
            side = "baseline" if now is None else "current"
            print(f"  {name:<40} only in {side}, not gated")
            continue
        regression = regression_ratio(name, float(now), float(then))
        direction = "lower" if lower_is_better(name) else "higher"
        if regression <= args.tolerance:
            verdict = "ok"
        else:
            verdict = "FAIL" if gated else "regressed (not gated: host mismatch)"
        print(
            f"  {name:<40} {then:>12.4f} -> {now:>12.4f}  "
            f"({regression:+.1%} worse, {direction}-is-better) {verdict}"
        )
        if gated and regression > args.tolerance:
            failures.append((name, regression))

    if failures:
        print(f"{len(failures)} metric(s) regressed beyond {args.tolerance:.0%}:")
        for name, regression in failures:
            print(f"  {name}: {regression:+.1%}")
        return 1
    print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
