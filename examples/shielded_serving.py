"""Serve a PELTA-shielded defender to untrusted clients at batch speed.

The deployment story of the paper: a TEE-shielded model answers inference
queries from clients that do not trust the hosting platform.  This example
walks the serving runtime end to end:

1. train a ViT defender through the artifact cache (re-runs train nothing);
2. stand up a :class:`~repro.serve.ShieldedInferenceService` — the model's
   stem runs enclave-resident as a partition stage, forwards replay through
   the grad-free capture cache, and queries are dynamically micro-batched;
3. serve a constant-rate workload and compare against single-request
   serving — same predictions, several times the throughput, a fraction of
   the TEE world switches per request;
4. open an attestation-gated session and round-trip a sealed query: the
   client verifies the enclave quote before any ciphertext flows.

Run with:  python examples/shielded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.eval import ExperimentConfig
from repro.eval.engine import ArtifactCache
from repro.serve import BatchingPolicy, ShieldedInferenceService, uniform_workload
from repro.utils import set_global_seed


def main() -> None:
    set_global_seed(7)

    # 1. Trained defender via the artifact cache -----------------------------
    config = ExperimentConfig(
        dataset="cifar10",
        models=("vit_b32",),
        train_per_class=32,
        test_per_class=16,
        train_epochs=4,
        train_lr=3e-3,
    )
    cache = ArtifactCache(directory="results/cache")
    model = cache.get_defender("vit_b32", config)
    dataset = cache.get_dataset(config)
    inputs = dataset.test_images[:96]

    # 2. The serving runtime -------------------------------------------------
    policy = BatchingPolicy(max_batch=8, max_wait_us=4000.0)
    workload = uniform_workload(inputs, inter_arrival_us=150.0)
    with ShieldedInferenceService(model, policy) as service:
        print("Stage partition:", service.pool.partition_description())
        service.serve(uniform_workload(inputs[:16], 150.0))  # warm the capture cache
        batched = service.serve(workload)

    # 3. Single-request serving for comparison (no batching, eager forwards) -
    with ShieldedInferenceService(model, BatchingPolicy(max_batch=1), capture="eager") as naive:
        single = naive.serve(uniform_workload(inputs, inter_arrival_us=150.0))

    stats = batched.stats
    print(
        f"\nBatched:  {stats.throughput_rps:8.1f} req/s in {stats.batches} batches "
        f"(mean size {stats.mean_batch_size:.1f}), "
        f"{stats.world_switches_per_request:.2f} world switches/request, "
        f"p95 latency {stats.latency_us_p95 / 1000.0:.2f} ms"
    )
    print(
        f"Single:   {single.stats.throughput_rps:8.1f} req/s, "
        f"{single.stats.world_switches_per_request:.2f} world switches/request"
    )
    print(
        f"Speedup:  {stats.throughput_rps / single.stats.throughput_rps:.2f}x, "
        f"predictions identical: "
        f"{bool(np.array_equal(batched.predictions(), single.predictions()))}"
    )

    # 4. Attestation-gated sealed queries ------------------------------------
    with ShieldedInferenceService(model, policy) as service:
        session = service.open_session("untrusting-client")
        print("\nSession attested: the client verified the serving enclave's quote.")
        sealed_query = session.seal_query(inputs[0])
        service.submit_sealed(0, sealed_query)
        report = service.serve()
        reply = report.replies[0]
        logits = session.open_reply(service.seal_reply(reply))
        print(
            f"Sealed round trip ok: predicted class {reply.prediction} "
            f"(logits intact: {bool(np.array_equal(logits, reply.logits))})"
        )


if __name__ == "__main__":
    main()
