"""The road-sign patch-attack scenario from the paper's introduction.

A compromised FL client copies the broadcast model from its own RAM and
computes a malicious sticker (an adversarial patch).  Pasted on a road sign,
the sticker makes every unaware vehicle running the collaboratively trained
model misclassify the sign — without the model ever being modified.  With
PELTA shielding the model's stem, the client can only optimise the patch
through the upsampled frontier adjoint and the sticker loses most of its
power.

Run with:  python examples/patch_attack_roadsign.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import AdversarialPatchAttack, AttackDriver, DriverConfig, make_attacker_view
from repro.core import ShieldedModel
from repro.data import make_cifar10_like
from repro.eval import select_correctly_classified
from repro.models import resnet56
from repro.nn.trainer import fit_classifier
from repro.utils import set_global_seed


def main() -> None:
    set_global_seed(17)
    # Treat the synthetic classes as "traffic sign" categories.
    dataset = make_cifar10_like(train_per_class=40, test_per_class=12)
    model = resnet56(num_classes=10, image_size=32)
    fit_classifier(model, dataset.train_images, dataset.train_labels, epochs=4, lr=3e-3)
    print(f"victim model clean accuracy: {model.accuracy(dataset.test_images, dataset.test_labels):.1%}")

    # 24 "road signs" that the fleet currently recognises correctly.
    signs, sign_labels = select_correctly_classified(
        model.predict, dataset.test_images, dataset.test_labels, max_samples=24
    )

    attack = AdversarialPatchAttack(patch_size=8, steps=25, step_size=0.05, row=2, col=2)
    driver = AttackDriver(DriverConfig(backend="captured", active_set=False))

    # Compromised client with full white-box access to its local model copy.
    white_box = driver.run(attack, make_attacker_view(model), signs, sign_labels)
    print(
        f"sticker crafted WITHOUT PELTA: {white_box.success_rate:.1%} of signs misclassified "
        f"(patch covers {attack.patch_size}x{attack.patch_size} pixels)"
    )

    # Same client when the deployment shields the stem with PELTA.
    shielded_view = make_attacker_view(ShieldedModel(model))
    shielded = driver.run(attack, shielded_view, signs, sign_labels)
    # The defender evaluates with its own (unchanged) model.
    fooled = (model.predict(shielded.adversarials) != sign_labels).mean()
    print(f"sticker crafted WITH PELTA:    {fooled:.1%} of signs misclassified")


if __name__ == "__main__":
    main()
