"""TEE-attested federated training, then SAGA vs the shielded global model.

End-to-end demo of the federation runtime:

1. four clients, each carrying a TrustZone enclave, enroll with the server's
   attestation gate; their quotes are verified before any update is trusted
   (a tampered quote is shown to be rejected);
2. the federation trains a global model over the *thread* transport — local
   updates run in parallel, every broadcast/update sealed through the
   attested secure channels;
3. the trained global model is attacked with SAGA, once in the clear
   white-box setting and once with its stem shielded by PELTA.

Run with:  python examples/federated_shielded.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    AttackDriver,
    DriverConfig,
    SelfAttentionGradientAttack,
    make_attacker_view,
)
from repro.core.shielded_model import ShieldedModel
from repro.data import iid_partition, make_cifar10_like
from repro.fl import (
    AttestationGate,
    ClientConfig,
    FederationRuntime,
    HonestClient,
    ThreadTransport,
)
from repro.models import SimpleCNN, SimpleCNNConfig
from repro.tee.attestation import AttestationQuote
from repro.tee.enclave import TrustZoneEnclave
from repro.tee.errors import AttestationError
from repro.utils import set_global_seed


def model_factory() -> SimpleCNN:
    """The architecture shared by the server and every client."""
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=10, widths=(12, 24), image_size=32))


def main() -> None:
    set_global_seed(23)
    dataset = make_cifar10_like(train_per_class=48, test_per_class=12)
    partitions = iid_partition(dataset.train_labels, num_clients=4)
    clients = [
        HonestClient(
            f"client{i}",
            model_factory,
            dataset.train_images[part],
            dataset.train_labels[part],
            config=ClientConfig(local_epochs=3, batch_size=32, learning_rate=0.05),
            enclave=TrustZoneEnclave(name=f"client{i}.enclave"),
        )
        for i, part in enumerate(partitions)
    ]
    device_keys = {client.client_id: b"device-key-" + client.client_id.encode() for client in clients}

    runtime = FederationRuntime(
        global_model=model_factory(),
        clients=clients,
        transport=ThreadTransport(max_workers=4),
    )
    sessions = runtime.attest_clients(device_keys)
    print(f"attested {len(sessions)} client enclave(s): {sorted(sessions)}")

    # A tampered quote never reaches the update path.
    rogue = TrustZoneEnclave(name="rogue.enclave")
    runtime.gate.enroll("rogue", b"rogue-device-key", rogue.measurement())

    def tampered(nonce: bytes) -> AttestationQuote:
        quote = rogue.attest(nonce, b"rogue-device-key")
        return AttestationQuote(
            enclave_name=quote.enclave_name,
            measurement=quote.measurement,
            nonce=quote.nonce,
            signature=bytes(value ^ 0x01 for value in quote.signature),
        )

    try:
        runtime.gate.establish("rogue", tampered)
    except AttestationError as error:
        print(f"tampered quote rejected: {error}")

    result = runtime.run(4, dataset.test_images, dataset.test_labels)
    print("federated accuracy per round:", [f"{a:.1%}" for a in result.accuracies])
    stats = runtime.secure_stats
    print(
        f"secure traffic: {stats.sealed_messages} sealed messages, "
        f"{stats.sealed_bytes / 1e6:.2f} MB through the attested channels"
    )

    # SAGA against the federated global model, clear vs PELTA-shielded.
    global_model = runtime.global_model
    correct = global_model.predict(dataset.test_images) == dataset.test_labels
    images = dataset.test_images[correct][:24]
    labels = dataset.test_labels[correct][:24]
    saga = SelfAttentionGradientAttack(epsilon=0.062, step_size=0.0062, steps=10, alpha_cnn=0.5)
    driver = AttackDriver(DriverConfig(backend="captured", active_set=False))

    clear = driver.run(saga, make_attacker_view(global_model), images, labels)
    print(f"SAGA success WITHOUT PELTA: {clear.success_rate:.1%}")

    shielded_view = make_attacker_view(ShieldedModel(global_model), strategy="auto")
    shielded = driver.run(saga, shielded_view, images, labels)
    print(f"SAGA success WITH PELTA:    {shielded.success_rate:.1%}")


if __name__ == "__main__":
    main()
