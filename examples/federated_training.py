"""Federated learning with a compromised client, with and without PELTA.

Reproduces the scenario of Fig. 1 in the paper: a trusted server trains a
model with FedAvg over several clients; one of them is compromised and probes
its own local copy of the broadcast model to craft adversarial examples.
When the deployment ships the model with a PELTA-shielded stem, the
compromised client's evasion attack collapses to near-random effectiveness —
while federated training itself proceeds unchanged.

Run with:  python examples/federated_training.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import PGD
from repro.data import iid_partition, make_cifar10_like
from repro.fl import ClientConfig, CompromisedClient, FederationRuntime, HonestClient
from repro.models import SimpleCNN, SimpleCNNConfig
from repro.utils import set_global_seed


def model_factory() -> SimpleCNN:
    """The model architecture shared by the server and every client."""
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=10, widths=(12, 24), image_size=32))


def main() -> None:
    set_global_seed(11)
    dataset = make_cifar10_like(train_per_class=48, test_per_class=12)
    partitions = iid_partition(dataset.train_labels, num_clients=4)
    client_config = ClientConfig(local_epochs=1, batch_size=32, learning_rate=0.05)
    attack = PGD(epsilon=0.031, step_size=0.0031, steps=10)

    # Three honest clients plus one compromised client (the Fig. 1 scenario).
    clients = [
        HonestClient(
            f"client{i}",
            model_factory,
            dataset.train_images[part],
            dataset.train_labels[part],
            config=client_config,
        )
        for i, part in enumerate(partitions[:3])
    ]
    compromised = CompromisedClient(
        "compromised",
        model_factory,
        dataset.train_images[partitions[3]],
        dataset.train_labels[partitions[3]],
        attack=attack,
        config=client_config,
        shield_model=False,  # toggled below
    )
    clients.append(compromised)

    runtime = FederationRuntime(global_model=model_factory(), clients=clients)
    result = runtime.run(3, dataset.test_images, dataset.test_labels)
    print("federated training accuracy per round:", [f"{a:.1%}" for a in result.accuracies])

    # The compromised client now probes its local copy of the broadcast model.
    probe_clear = compromised.probe_for_adversarial_examples(max_samples=24)
    print(f"attack success rate WITHOUT PELTA on the client's copy: {probe_clear.success_rate:.1%}")

    # Same client, but the deployment shields the broadcast model with PELTA.
    compromised.shield_model = True
    probe_shielded = compromised.probe_for_adversarial_examples(max_samples=24)
    print(f"attack success rate WITH PELTA on the client's copy:    {probe_shielded.success_rate:.1%}")

    # The defense never touches the aggregation path: the global model is intact.
    final_accuracy = runtime.global_model.accuracy(dataset.test_images, dataset.test_labels)
    print(f"global model accuracy after all rounds: {final_accuracy:.1%}")


if __name__ == "__main__":
    main()
