"""Quickstart: shield a classifier with PELTA and measure what the attacker loses.

This example walks through the core loop of the paper on a laptop-scale setup:

1. train a small Vision Transformer on a synthetic CIFAR-10-like dataset —
   through the experiment engine's artifact cache, so re-running the example
   (or any scenario with the same configuration) skips the training;
2. attack it with PGD in the full white-box setting (the default in FL);
3. wrap the same model in a PELTA :class:`~repro.core.ShieldedModel`, which
   seals the stem inside a simulated TrustZone enclave, and attack again —
   this time the attacker only gets the upsampled frontier adjoint;
4. compare robust accuracies and inspect the enclave's memory footprint.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.attacks import AttackDriver, DriverConfig, PGD, make_attacker_view
from repro.core import ShieldedModel, format_bytes, measure_shielded_model
from repro.eval import ExperimentConfig, robust_accuracy, select_correctly_classified
from repro.eval.engine import ArtifactCache
from repro.utils import set_global_seed


def main() -> None:
    set_global_seed(7)

    # 1. Data and defender, via the artifact cache ---------------------------
    # The cache keys artifacts by a stable hash of the configuration (plus
    # the global seed), persisting trained weights under results/cache — the
    # second run of this script trains nothing.
    config = ExperimentConfig(
        dataset="cifar10",
        models=("vit_b16",),
        train_per_class=40,
        test_per_class=12,
        train_epochs=4,
        train_lr=3e-3,
    )
    cache = ArtifactCache(directory="results/cache")
    dataset = cache.get_dataset(config)
    model = cache.get_defender("vit_b16", config)
    clean_accuracy = model.accuracy(dataset.test_images, dataset.test_labels)
    trained = "trained now" if cache.stats.trainings else "loaded from cache"
    print(f"clean accuracy: {clean_accuracy:.1%} (defender {trained})")

    # Evaluate robustness over correctly classified samples, as in the paper.
    images, labels = select_correctly_classified(
        model.predict, dataset.test_images, dataset.test_labels, max_samples=32
    )
    attack = PGD(epsilon=0.031, step_size=0.0031, steps=10)
    # The attack driver owns the step loop: captured-graph gradient replay
    # and per-sample query accounting come for free (active_set=False keeps
    # the paper's fixed-budget trajectories).
    driver = AttackDriver(DriverConfig(backend="captured", active_set=False))

    # 2. White-box attack on the unshielded model ---------------------------
    white_box_view = make_attacker_view(model)
    clear_adversarials = driver.run(attack, white_box_view, images, labels).adversarials
    clear_robust = robust_accuracy(model.predict, clear_adversarials, labels)
    print(f"PGD robust accuracy without PELTA: {clear_robust:.1%}")

    # 3. The same attack against the PELTA-shielded model -------------------
    shielded = ShieldedModel(model)  # seals the ViT stem inside a TrustZone enclave
    restricted_view = make_attacker_view(shielded)
    shielded_adversarials = driver.run(attack, restricted_view, images, labels).adversarials
    shielded_robust = robust_accuracy(model.predict, shielded_adversarials, labels)
    print(f"PGD robust accuracy with PELTA:    {shielded_robust:.1%}")

    # 4. What the shield costs ----------------------------------------------
    estimate = measure_shielded_model(shielded, images[:1], labels[:1])
    print(
        f"shielded parameters: {estimate.shielded_parameters:,} "
        f"({estimate.shielded_portion:.2%} of the model), "
        f"worst-case enclave memory: {format_bytes(estimate.worst_case_bytes)} "
        f"(TrustZone budget: {format_bytes(shielded.enclave.memory_limit_bytes)})"
    )
    switches = shielded.enclave.boundary.stats.switches
    print(f"secure-world switches recorded so far: {switches}")


if __name__ == "__main__":
    main()
