"""System implications of PELTA (§VI): enclave memory, world switches, bandwidth.

Quantifies the systems costs the paper discusses: per-inference secure-world
crossings, secure-channel encryption of the data moving across the boundary,
remote attestation of the enclave, and the enclave memory budget of shielding
each defender architecture.

Run with:  python examples/tee_overhead_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ShieldedModel, format_bytes, measure_shielded_model, paper_table1
from repro.models import build_model
from repro.tee import establish_session, verify_quote
from repro.utils import set_global_seed, spawn_rng


def main() -> None:
    set_global_seed(23)
    rng = spawn_rng("example.tee")

    # ------------------------------------------------------------------ #
    # Enclave memory (Table I, paper-dimension estimates)
    # ------------------------------------------------------------------ #
    print("Enclave memory estimates for the paper's model dimensions:")
    for row in paper_table1():
        print(
            f"  {row['model']:<14} worst-case {format_bytes(row['worst_case_bytes']):>10}"
            f"  (paper reports {format_bytes(row['paper_tee_bytes'])})"
        )

    # ------------------------------------------------------------------ #
    # Per-inference world-switch cost on a bench-scale shielded ViT
    # ------------------------------------------------------------------ #
    model = build_model("vit_b16", num_classes=10, image_size=32)
    shielded = ShieldedModel(model)
    inputs = rng.uniform(size=(16, 3, 32, 32))
    for index in range(len(inputs)):
        shielded.predict(inputs[index : index + 1])
    stats = shielded.enclave.boundary.stats
    print(
        f"\n16 shielded inferences: {stats.switches} world switches, "
        f"{stats.bytes_in + stats.bytes_out:,} bytes across the boundary, "
        f"{stats.simulated_time_us / 16:.1f} simulated us per inference"
    )

    estimate = measure_shielded_model(shielded, inputs[:1], np.array([0]))
    print(
        f"measured enclave occupancy (1 forward/backward): "
        f"{format_bytes(estimate.worst_case_bytes)} of "
        f"{format_bytes(shielded.enclave.memory_limit_bytes)} TrustZone budget"
    )

    # ------------------------------------------------------------------ #
    # Secure channel + attestation for the FL server
    # ------------------------------------------------------------------ #
    client_channel, server_channel = establish_session(rng)
    stem_update = np.concatenate([p.data.reshape(-1) for p in shielded.stem_parameters()])
    message, shape, dtype = client_channel.encrypt_array(stem_update)
    recovered = server_channel.decrypt_array(message, shape, dtype)
    print(
        f"\nstem update of {stem_update.nbytes:,} bytes encrypted into "
        f"{message.nbytes:,} bytes and recovered intact: {np.allclose(recovered, stem_update)}"
    )

    nonce = bytes(int(v) for v in rng.integers(0, 256, size=16))
    device_key = b"device-provisioned-key-0123456789"
    quote = shielded.enclave.attest(nonce, device_key)
    accepted = verify_quote(quote, shielded.enclave.measurement(), nonce, device_key)
    print(f"remote attestation of the client enclave accepted by the server: {accepted}")


if __name__ == "__main__":
    main()
