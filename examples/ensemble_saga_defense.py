"""Defending a ViT + BiT ensemble against the Self-Attention Gradient Attack.

Reproduces the Table IV experiment of the paper at example scale through the
experiment engine: the ``table4_cifar10`` scenario trains (or loads from the
artifact cache) a Vision Transformer and a Big Transfer member, fans SAGA
out over the four shielding settings (no shield, ViT only, BiT only, both)
in parallel cells, and renders the resulting table.  Shielding both members
is what restores the ensemble's astuteness.

Run with:  python examples/ensemble_saga_defense.py
"""

from __future__ import annotations

from repro.eval import render_run
from repro.eval.engine import CellExecutor, ExecutorConfig, ExperimentEngine
from repro.utils import set_global_seed


def main() -> None:
    set_global_seed(13)
    engine = ExperimentEngine(
        executor=CellExecutor(ExecutorConfig(backend="auto", max_workers=4)),
        results_dir="results",
    )
    record = engine.run(
        "table4_cifar10",
        scale="bench",
        train_per_class=40,
        test_per_class=12,
        eval_samples=24,
        saga_steps=10,
    )
    print(render_run(record))
    stats = record.cache_stats
    print(
        f"\n{stats['trainings']} member(s) trained, {stats['defender_hits']} loaded "
        f"from the artifact cache; results persisted under results/runs/."
    )
    print(
        "Shielding a single member leaves its counterpart exposed; shielding both "
        "members restores the ensemble's astuteness (the Table IV result)."
    )


if __name__ == "__main__":
    main()
