"""Defending a ViT + BiT ensemble against the Self-Attention Gradient Attack.

Reproduces the Table IV experiment of the paper at example scale: a
random-selection ensemble of a Vision Transformer and a Big Transfer model is
attacked with SAGA under the four shielding settings (no shield, ViT only,
BiT only, both members shielded).  Shielding both members is what restores
the ensemble's astuteness.

Run with:  python examples/ensemble_saga_defense.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import SelfAttentionGradientAttack, make_attacker_view
from repro.core import ShieldedModel
from repro.data import make_cifar10_like
from repro.eval import robust_accuracy, select_correctly_classified
from repro.models import RandomSelectionEnsemble, bit_m_r101x3, vit_l16
from repro.nn.trainer import fit_classifier
from repro.utils import set_global_seed

SETTINGS = ("none", "vit_only", "bit_only", "both")


def main() -> None:
    set_global_seed(13)
    dataset = make_cifar10_like(train_per_class=40, test_per_class=12)

    # Train the two ensemble members.
    vit = vit_l16(num_classes=10, image_size=32)
    bit = bit_m_r101x3(num_classes=10, image_size=32)
    for name, model in (("ViT-L/16", vit), ("BiT-M-R101x3", bit)):
        fit_classifier(model, dataset.train_images, dataset.train_labels, epochs=4, lr=3e-3)
        print(f"{name} clean accuracy: {model.accuracy(dataset.test_images, dataset.test_labels):.1%}")
    ensemble = RandomSelectionEnsemble([vit, bit])

    # Evaluation set: samples both members classify correctly.
    def both_correct(batch: np.ndarray) -> np.ndarray:
        vit_pred, bit_pred = vit.predict(batch), bit.predict(batch)
        return np.where(vit_pred == bit_pred, vit_pred, -1)

    images, labels = select_correctly_classified(
        both_correct, dataset.test_images, dataset.test_labels, max_samples=24
    )

    saga = SelfAttentionGradientAttack(epsilon=0.031, step_size=0.0031, steps=10, alpha_cnn=0.5)
    print(f"\n{'Setting':<10}{'ViT':>8}{'BiT':>8}{'Ensemble':>10}")
    for setting in SETTINGS:
        vit_target = ShieldedModel(vit) if setting in ("vit_only", "both") else vit
        bit_target = ShieldedModel(bit) if setting in ("bit_only", "both") else bit
        adversarials = saga.craft_against_ensemble(
            make_attacker_view(vit_target), make_attacker_view(bit_target), images, labels
        )
        vit_robust = robust_accuracy(vit.predict, adversarials, labels)
        bit_robust = robust_accuracy(bit.predict, adversarials, labels)
        ensemble_robust = robust_accuracy(lambda batch: ensemble.predict(batch), adversarials, labels)
        print(f"{setting:<10}{vit_robust:>8.1%}{bit_robust:>8.1%}{ensemble_robust:>10.1%}")

    print(
        "\nShielding a single member leaves its counterpart exposed; shielding both "
        "members restores the ensemble's astuteness (the Table IV result)."
    )


if __name__ == "__main__":
    main()
