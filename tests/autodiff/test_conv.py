"""Tests for convolution / pooling primitives and the attacker-side transposed conv."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    avg_pool2d,
    col2im,
    conv2d,
    conv_transpose2d_numpy,
    global_avg_pool2d,
    im2col,
    max_pool2d,
    numerical_gradient,
    relative_error,
)

from tests.autodiff.conftest import grad_check_settings, value_atol, value_rtol


class TestIm2Col:
    def test_shapes(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        col, out_h, out_w = im2col(images, 3, 3, stride=1, padding=1)
        assert (out_h, out_w) == (8, 8)
        assert col.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_stride_and_padding_output_size(self, rng):
        images = rng.normal(size=(1, 1, 7, 7))
        _, out_h, out_w = im2col(images, 3, 3, stride=2, padding=1)
        assert (out_h, out_w) == (4, 4)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """col2im must be the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(2, 2, 6, 6))
        col, out_h, out_w = im2col(x, 3, 3, stride=2, padding=1)
        y = rng.normal(size=col.shape)
        lhs = float((col * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        out = conv2d(x, w, None, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv2d(Tensor(rng.normal(size=(1, 3, 4, 4))), Tensor(rng.normal(size=(2, 4, 3, 3))))

    def test_matches_manual_convolution_1x1(self, rng):
        """A 1x1 convolution is a per-pixel linear map over channels."""
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 3, 1, 1))
        out = conv2d(Tensor(x), Tensor(w)).data
        expected = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out, expected, atol=value_atol())

    def test_gradient_wrt_input_weight_and_bias(self, rng):
        x0 = rng.normal(size=(2, 3, 6, 6))
        w0 = rng.normal(size=(4, 3, 3, 3))
        b0 = rng.normal(size=(4,))
        x = Tensor(x0.copy(), requires_grad=True)
        w = Tensor(w0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        probe = rng.normal(size=(2, 4, 3, 3))
        conv2d(x, w, b, stride=2, padding=1).backward(probe)

        def scalar_x(a):
            return float((conv2d(Tensor(a), Tensor(w0), Tensor(b0), stride=2, padding=1).data * probe).sum())

        def scalar_w(a):
            return float((conv2d(Tensor(x0), Tensor(a), Tensor(b0), stride=2, padding=1).data * probe).sum())

        def scalar_b(a):
            return float((conv2d(Tensor(x0), Tensor(w0), Tensor(a), stride=2, padding=1).data * probe).sum())

        eps, tol = grad_check_settings()
        assert relative_error(x.grad, numerical_gradient(scalar_x, x0.copy(), eps=eps)) < tol
        assert relative_error(w.grad, numerical_gradient(scalar_w, w0.copy(), eps=eps)) < tol
        assert relative_error(b.grad, numerical_gradient(scalar_b, b0.copy(), eps=eps)) < tol


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient_goes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_gradient_uniform(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool_shape_and_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 5, 5)), requires_grad=True)
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 5, 5), 1.0 / 25.0))


class TestConvTranspose:
    def test_output_shape_matches_request(self, rng):
        adjoint = rng.normal(size=(2, 4, 8, 8))
        kernel = rng.normal(size=(4, 3, 1, 1))
        out = conv_transpose2d_numpy(adjoint, kernel, stride=1, padding=0, output_size=(8, 8))
        assert out.shape == (2, 3, 8, 8)

    def test_upsamples_spatially_with_stride(self, rng):
        adjoint = rng.normal(size=(1, 2, 4, 4))
        kernel = rng.normal(size=(2, 3, 2, 2))
        out = conv_transpose2d_numpy(adjoint, kernel, stride=2, padding=0)
        assert out.shape == (1, 3, 8, 8)

    def test_is_adjoint_of_conv2d(self, rng):
        """conv_transpose(w) must be the adjoint of conv2d(w): <conv(x), y> == <x, convT(y)>."""
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        y = rng.normal(size=(1, 4, 6, 6))
        forward = conv2d(Tensor(x), Tensor(w), None, stride=1, padding=1).data
        backward = conv_transpose2d_numpy(y, w, stride=1, padding=1, output_size=(6, 6))
        assert float((forward * y).sum()) == pytest.approx(
            float((x * backward).sum()), rel=value_rtol()
        )

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv_transpose2d_numpy(rng.normal(size=(1, 2, 4, 4)), rng.normal(size=(3, 1, 2, 2)))
