"""Tests for the differentiable functions in repro.autodiff.functional."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    cross_entropy,
    dropout,
    gelu,
    log_softmax,
    margin_loss,
    mse_loss,
    nll_loss,
    numerical_gradient,
    relative_error,
    relu,
    sigmoid,
    softmax,
)

from tests.autodiff.conftest import away_from, grad_check_settings, value_atol


def _grad_check(build, x0, tol=None):
    eps, default_tol = grad_check_settings()
    tol = tol if tol is not None else default_tol
    probe = {}

    def scalar(a):
        out = build(Tensor(a))
        if "p" not in probe:
            probe["p"] = np.random.default_rng(3).normal(size=out.shape)
        return float((out.data * probe["p"]).sum())

    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    if "p" not in probe:
        probe["p"] = np.random.default_rng(3).normal(size=out.shape)
    out.backward(probe["p"])
    numeric = numerical_gradient(scalar, x0.copy(), eps=eps)
    assert relative_error(t.grad, numeric) < tol


class TestActivations:
    @pytest.mark.parametrize(
        "fn", [relu, sigmoid, gelu, lambda t: softmax(t, axis=-1), lambda t: log_softmax(t, axis=-1)],
        ids=["relu", "sigmoid", "gelu", "softmax", "log_softmax"],
    )
    def test_gradients(self, fn, rng):
        # Keep samples clear of relu's kink at 0 (harmless for the others).
        _grad_check(fn, away_from(rng.normal(size=(4, 6))))

    def test_relu_forward_values(self):
        out = relu(Tensor(np.array([-1.0, 0.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = sigmoid(Tensor(rng.normal(size=(10,)) * 10))
        assert np.all(out.data > 0.0) and np.all(out.data < 1.0)

    def test_gelu_matches_definition_at_zero(self):
        assert gelu(Tensor(np.zeros(3))).data == pytest.approx(np.zeros(3))

    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(5, 7)) * 10), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5), atol=value_atol())

    def test_softmax_numerically_stable_for_large_logits(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0, -1000.0]])), axis=-1)
        assert np.isfinite(out.data).all()

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 5))
        a = log_softmax(Tensor(x), axis=-1).data
        b = np.log(softmax(Tensor(x), axis=-1).data)
        np.testing.assert_allclose(a, b, atol=value_atol())


class TestLosses:
    def test_cross_entropy_gradient(self, rng):
        labels = rng.integers(0, 6, size=5)
        _grad_check(lambda t: cross_entropy(t, labels, reduction="sum"), rng.normal(size=(5, 6)))

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert float(loss.data) < 1e-6

    def test_cross_entropy_reductions_consistent(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = rng.integers(0, 5, size=4)
        mean = float(cross_entropy(Tensor(logits), labels, reduction="mean").data)
        total = float(cross_entropy(Tensor(logits), labels, reduction="sum").data)
        per_sample = cross_entropy(Tensor(logits), labels, reduction="none").data
        assert total == pytest.approx(mean * 4)
        assert per_sample.shape == (4,)
        assert total == pytest.approx(per_sample.sum())

    def test_nll_rejects_unknown_reduction(self, rng):
        with pytest.raises(ValueError):
            nll_loss(log_softmax(Tensor(rng.normal(size=(2, 3)))), np.array([0, 1]), reduction="bogus")

    def test_margin_loss_gradient(self, rng):
        labels = rng.integers(0, 5, size=6)
        _grad_check(lambda t: margin_loss(t, labels, confidence=0.3), rng.normal(size=(6, 5)))

    def test_margin_loss_value_for_confident_correct_prediction(self):
        logits = np.array([[10.0, -10.0]])
        loss = margin_loss(Tensor(logits), np.array([0]), confidence=5.0)
        assert float(loss.data) == pytest.approx(-5.0)

    def test_margin_loss_positive_when_misclassified(self):
        logits = np.array([[0.0, 3.0]])
        loss = margin_loss(Tensor(logits), np.array([0]), confidence=0.0)
        assert float(loss.data) == pytest.approx(3.0)

    def test_mse_loss_values_and_gradient(self, rng):
        target = rng.normal(size=(3, 2))
        _grad_check(lambda t: mse_loss(t, target, reduction="sum"), rng.normal(size=(3, 2)))
        pred = Tensor(target.copy())
        assert float(mse_loss(pred, target).data) == pytest.approx(0.0)

    def test_mse_rejects_unknown_reduction(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones(3)), np.ones(3), reduction="bogus")


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = dropout(x, rate=0.5, rng=rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_identity_with_zero_rate(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = dropout(x, rate=0.0, rng=rng, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, rate=0.3, rng=rng, training=True)
        assert float(out.data.mean()) == pytest.approx(1.0, abs=0.05)

    def test_gradient_masked_like_forward(self, rng):
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = dropout(x, rate=0.5, rng=np.random.default_rng(0), training=True)
        out.sum().backward()
        # Positions dropped in the forward pass must receive zero gradient.
        dropped = out.data == 0.0
        assert np.all(x.grad[dropped] == 0.0)
        assert np.all(x.grad[~dropped] > 0.0)
