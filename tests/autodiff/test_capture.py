"""Tests of captured-graph execution (record once, replay with reused buffers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import (
    CapturedExecution,
    EagerExecution,
    GraphCaptureError,
    GraphRecording,
    Tensor,
    TraceHandles,
    resolve_execution_backend,
)
from repro.autodiff import functional as F


def _mlp_trace(weights, labels):
    """A trace closure building a small MLP + objective graph."""
    w1, w2 = weights

    def trace(array: np.ndarray) -> TraceHandles:
        x = Tensor(array, requires_grad=True, is_input=True)
        hidden = F.gelu(x @ w1)
        logits = hidden @ w2
        objective = F.cross_entropy(logits, labels, reduction="sum") + F.margin_loss(
            logits, labels, confidence=2.0
        )
        return TraceHandles(objective=objective, input=x)

    return trace


@pytest.fixture()
def mlp():
    rng = np.random.default_rng(7)
    w1 = Tensor(rng.normal(size=(6, 8)), requires_grad=True, is_parameter=True)
    w2 = Tensor(rng.normal(size=(8, 3)), requires_grad=True, is_parameter=True)
    labels = np.array([0, 2, 1, 0])
    return _mlp_trace((w1, w2), labels), rng


class TestGraphRecording:
    def test_replay_gradients_are_bit_identical_to_eager(self, mlp):
        trace, rng = mlp
        eager, captured = EagerExecution(), CapturedExecution()
        for trial in range(4):
            batch = rng.normal(size=(4, 6))
            expected = np.array(eager.run(trace, batch).input.grad)
            actual = np.array(captured.run(trace, batch, key="mlp").input.grad)
            np.testing.assert_array_equal(expected, actual, err_msg=f"trial {trial}")
        # Lazy recording: query 1 runs eagerly, query 2 records, 3-4 replay.
        assert captured.stats.records == 1
        assert captured.stats.replays == 2

    def test_replay_objective_value_matches_eager(self, mlp):
        trace, rng = mlp
        eager, captured = EagerExecution(), CapturedExecution()
        for _ in range(3):
            batch = rng.normal(size=(4, 6))
            expected = eager.run(trace, batch).objective.data
            actual = captured.run(trace, batch, key="mlp").objective.data
            np.testing.assert_array_equal(expected, actual)

    def test_shape_mismatch_is_rejected(self, mlp):
        trace, rng = mlp
        handles = EagerExecution().run(trace, rng.normal(size=(4, 6)))
        recording = GraphRecording(handles)
        with pytest.raises(GraphCaptureError):
            recording.replay(rng.normal(size=(2, 6)))

    def test_rebinds_reapplied_after_replay(self, mlp):
        trace, rng = mlp

        class Holder:
            attr = None

        holder = Holder()

        def trace_with_rebind(array):
            handles = trace(array)
            handles.rebinds.append((holder, "attr", "recorded"))
            return handles

        captured = CapturedExecution()
        captured.run(trace_with_rebind, rng.normal(size=(4, 6)), key="r")
        captured.run(trace_with_rebind, rng.normal(size=(4, 6)), key="r")  # records
        holder.attr = "clobbered"
        captured.run(trace_with_rebind, rng.normal(size=(4, 6)), key="r")  # replays
        assert holder.attr == "recorded"


def _shape_agnostic_trace():
    """A trace whose labels adapt to the incoming batch size."""
    rng = np.random.default_rng(9)
    weight = Tensor(rng.normal(size=(6, 3)), requires_grad=True, is_parameter=True)

    def trace(array: np.ndarray) -> TraceHandles:
        x = Tensor(array, requires_grad=True, is_input=True)
        logits = F.gelu(x @ weight)
        labels = np.zeros(len(array), dtype=np.int64)
        return TraceHandles(
            objective=F.cross_entropy(logits, labels, reduction="sum"), input=x
        )

    return trace


class TestCapturedExecutionCache:
    def test_different_shapes_record_separately(self):
        trace, rng = _shape_agnostic_trace(), np.random.default_rng(1)
        captured = CapturedExecution()
        for shape in ((4, 6), (4, 6), (2, 6), (2, 6), (4, 6)):
            captured.run(trace, rng.normal(size=shape), key="k")
        # Each shape: first query eager, second records; the fifth replays.
        assert captured.stats.records == 2
        assert captured.stats.replays == 1

    def test_lru_eviction_bounds_recordings(self):
        trace, rng = _shape_agnostic_trace(), np.random.default_rng(1)
        captured = CapturedExecution(max_recordings=1)
        captured.run(trace, rng.normal(size=(4, 6)), key="k")
        captured.run(trace, rng.normal(size=(4, 6)), key="k")  # records (4, 6)
        captured.run(trace, rng.normal(size=(2, 6)), key="k")
        captured.run(trace, rng.normal(size=(2, 6)), key="k")  # evicts the first
        captured.run(trace, rng.normal(size=(4, 6)), key="k")  # records again
        assert captured.stats.records == 3
        assert captured.stats.replays == 0

    def test_unsupported_graph_falls_back_to_eager(self):
        rng = np.random.default_rng(3)
        generator = np.random.default_rng(0)

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)
            dropped = F.dropout(x, rate=0.5, rng=generator, training=True)
            return TraceHandles(objective=dropped.sum(), input=x)

        captured = CapturedExecution()
        for _ in range(3):
            handles = captured.run(trace, rng.normal(size=(4, 4)), key="drop")
            assert handles.input.grad is not None
        # Query 1 is the lazy eager pass; 2 fails to record, 3 short-circuits.
        assert captured.stats.records == 0
        assert captured.stats.fallbacks == 2


class TestResolveExecutionBackend:
    def test_names_resolve(self):
        assert resolve_execution_backend("eager").name == "eager"
        assert resolve_execution_backend("captured").name == "captured"
        assert resolve_execution_backend(None).name == "eager"

    def test_instances_pass_through(self):
        backend = CapturedExecution()
        assert resolve_execution_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_execution_backend("jit")


# --------------------------------------------------------------------------- #
# Grad-free inference capture (the serving hot path)
# --------------------------------------------------------------------------- #
from repro.autodiff import CapturedInference, InferenceHandles, no_grad  # noqa: E402
from repro.autodiff import resolve_inference_backend  # noqa: E402


def _inference_trace(weights, hooks=None):
    """A forward-only trace (no objective, traced under no_grad)."""
    w1, w2 = weights

    def trace(array: np.ndarray) -> InferenceHandles:
        with no_grad():
            x = Tensor(array, is_input=True)
            logits = F.gelu(x @ w1) @ w2
        return InferenceHandles(input=x, output=logits, on_replay=hooks)

    return trace


@pytest.fixture()
def inference_mlp():
    rng = np.random.default_rng(11)
    w1 = Tensor(rng.normal(size=(6, 8)), requires_grad=True, is_parameter=True)
    w2 = Tensor(rng.normal(size=(8, 3)), requires_grad=True, is_parameter=True)
    return (w1, w2), rng


class TestInferenceCapture:
    def test_replay_outputs_are_bit_identical_to_eager(self, inference_mlp):
        weights, rng = inference_mlp
        trace = _inference_trace(weights)
        captured = CapturedInference()
        for trial in range(4):
            batch = rng.normal(size=(4, 6))
            expected = np.array(trace(batch).output.data)
            actual = np.array(captured.run(trace, batch, key="mlp").output.data)
            np.testing.assert_array_equal(expected, actual, err_msg=f"trial {trial}")
        assert captured.stats.records == 1
        assert captured.stats.replays == 2

    def test_no_tape_is_built_under_no_grad(self, inference_mlp):
        weights, rng = inference_mlp
        handles = _inference_trace(weights)(rng.normal(size=(2, 6)))
        assert handles.output.backward_fn is None
        assert not handles.output.requires_grad
        # ... but the forward thunks are there, which is what replay needs.
        assert handles.output.forward_fn is not None

    def test_on_replay_hook_fires_per_replay_only(self, inference_mlp):
        weights, rng = inference_mlp
        fired = []
        trace = _inference_trace(weights, hooks=lambda: fired.append(1))
        captured = CapturedInference()
        for _ in range(4):
            captured.run(trace, rng.normal(size=(2, 6)), key="hook")
        assert len(fired) == captured.stats.replays == 2

    def test_shape_mismatch_is_rejected(self, inference_mlp):
        from repro.autodiff import InferenceRecording

        weights, rng = inference_mlp
        trace = _inference_trace(weights)
        recording = InferenceRecording(trace(rng.normal(size=(4, 6))))
        with pytest.raises(GraphCaptureError, match="shape"):
            recording.replay(rng.normal(size=(5, 6)))

    def test_lru_eviction_bounds_recordings(self, inference_mlp):
        weights, rng = inference_mlp
        trace = _inference_trace(weights)
        captured = CapturedInference(max_recordings=2)
        for rows in (1, 2, 3, 1, 2, 3):  # 3 shapes, capacity 2
            captured.run(trace, rng.normal(size=(rows, 6)), key="lru")
            captured.run(trace, rng.normal(size=(rows, 6)), key="lru")
        assert len(captured._recordings) == 2

    def test_unsupported_graph_falls_back_to_eager(self):
        generator = np.random.default_rng(0)
        rng = np.random.default_rng(3)

        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = F.dropout(x, rate=0.5, rng=generator, training=True)
            return InferenceHandles(input=x, output=out)

        captured = CapturedInference()
        for _ in range(3):
            handles = captured.run(trace, rng.normal(size=(4, 4)), key="drop")
            assert handles.output.data.shape == (4, 4)
        assert captured.stats.records == 0
        assert captured.stats.fallbacks >= 1

    def test_resolver_names(self):
        assert resolve_inference_backend("eager").name == "eager"
        assert resolve_inference_backend("captured").name == "captured"
        backend = CapturedInference()
        assert resolve_inference_backend(backend) is backend
        with pytest.raises(ValueError):
            resolve_inference_backend("jit")
