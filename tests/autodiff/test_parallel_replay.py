"""Tests of the dependency-scheduled parallel replay executor.

The wave scheduler levels a recording's replay steps into waves of mutually
independent work and runs each wave on a shared thread pool sized by
``REPRO_REPLAY_THREADS``.  The invariant under test: **every thread count
produces byte-identical outputs, gradients and stats** — parallelism is a
pure scheduling change, observable only through speed and the profiler.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.autodiff import (
    CapturedExecution,
    CapturedInference,
    EagerExecution,
    GraphRecording,
    InferenceHandles,
    InferenceRecording,
    Op,
    Tensor,
    TraceHandles,
    no_grad,
    profile_ops,
    replay_thread_count,
)
from repro.autodiff import functional as F
from repro.autodiff import ops as op_registry
from repro.autodiff.capture import _FusedChain, _build_replay_plan

_BRANCH_SCALES = (1.0, 1.25, 1.5, 1.75)


def _wide_grad_trace(weight):
    """Four independent elementwise branches merged into one objective."""

    def trace(array: np.ndarray) -> TraceHandles:
        x = Tensor(array, requires_grad=True, is_input=True)
        branches = [F.sigmoid((x * scale).tanh() + 0.5) for scale in _BRANCH_SCALES]
        merged = branches[0]
        for branch in branches[1:]:
            merged = merged + branch
        return TraceHandles(objective=(merged @ weight).sum(), input=x)

    return trace


def _wide_inference_trace(weight):
    def trace(array: np.ndarray) -> InferenceHandles:
        with no_grad():
            x = Tensor(array, is_input=True)
            branches = [((x * scale).tanh().exp() + 1.0).sqrt() for scale in _BRANCH_SCALES]
            merged = branches[0]
            for branch in branches[1:]:
                merged = merged + branch
            out = merged @ weight
        return InferenceHandles(input=x, output=out)

    return trace


class TestThreadCountKnob:
    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_THREADS", raising=False)
        import os

        assert replay_thread_count() == (os.cpu_count() or 1)

    def test_env_override_and_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "6")
        assert replay_thread_count() == 6
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "0")
        assert replay_thread_count() == 1

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "many")
        with pytest.raises(ValueError, match="REPRO_REPLAY_THREADS"):
            replay_thread_count()


class TestWavePlanner:
    def test_independent_branches_level_into_one_wide_wave(self, rng):
        weight = Tensor(rng.normal(size=(16, 4)), requires_grad=True, is_parameter=True)
        trace = _wide_grad_trace(weight)
        recording = GraphRecording(EagerExecution().run(trace, rng.normal(size=(8, 16))))
        # One chain per branch, all at dependency level 0.
        assert recording.max_wave_width >= len(_BRANCH_SCALES)
        assert recording.waves >= 2  # branches, then the merge tail
        assert recording.fused_chains >= len(_BRANCH_SCALES)

    def test_sequential_chain_has_width_one(self, rng):
        weight = Tensor(rng.normal(size=(6, 3)), requires_grad=True, is_parameter=True)

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)
            return TraceHandles(objective=F.gelu(x @ weight).sum(), input=x)

        recording = GraphRecording(EagerExecution().run(trace, rng.normal(size=(4, 6))))
        assert recording.max_wave_width == 1
        assert not recording._plan.parallelizable

    def test_waves_respect_dependencies(self, rng):
        """Every step's producers sit in strictly earlier waves."""
        weight = Tensor(rng.normal(size=(16, 4)), requires_grad=True, is_parameter=True)
        trace = _wide_inference_trace(weight)
        recording = InferenceRecording(trace(rng.normal(size=(8, 16))))
        plan = recording._plan
        wave_of = {}
        for wave_index, wave in enumerate(plan.waves):
            for step_index in wave:
                wave_of[step_index] = wave_index
        assert sorted(wave_of) == list(range(len(plan.steps)))
        producer = {}
        for step_index, step in enumerate(plan.steps):
            nodes = (
                [call.output for call, _ in step.steps]
                if isinstance(step, _FusedChain)
                else [step.node]
            )
            for node in nodes:
                for parent in node.parents:
                    dep = producer.get(parent.node_id)
                    if dep is not None and dep != step_index:
                        assert wave_of[dep] < wave_of[step_index]
                producer[node.node_id] = step_index

    def test_concurrency_unsafe_op_gets_singleton_wave(self, rng):
        """An op marked concurrency_safe=False never shares a wave."""
        op = Op(
            "test_unsafe_mul",
            lambda inputs, params, saved, out: (
                np.multiply(inputs[0], 2.0, out=out)
                if out is not None
                else inputs[0] * 2.0
            ),
            lambda ctx, grad: ((grad * 2.0) if ctx.needs[0] else None,),
            elementwise=True,
            concurrency_safe=False,
            gradcheck_skip="test-only op, unregistered after the test",
        )
        op_registry.register(op)
        try:

            def trace(array):
                x = Tensor(array, requires_grad=True, is_input=True)
                safe = [(x * scale).tanh() for scale in _BRANCH_SCALES]
                unsafe = op_registry.apply("test_unsafe_mul", [x])
                merged = unsafe
                for branch in safe:
                    merged = merged + branch
                return TraceHandles(objective=merged.sum(), input=x)

            recording = GraphRecording(EagerExecution().run(trace, rng.normal(size=(4, 8))))
            plan = recording._plan
            for wave in plan.waves:
                for index in wave:
                    step = plan.steps[index]
                    nodes = (
                        [call.op.name for call, _ in step.steps]
                        if isinstance(step, _FusedChain)
                        else [step.node.op]
                    )
                    if "test_unsafe_mul" in nodes:
                        assert len(wave) == 1, "unsafe op shared a wave"
        finally:
            op_registry.REGISTRY.pop("test_unsafe_mul")


@pytest.mark.parametrize("threads", ["1", "2", "8"])
class TestBitIdentity:
    """Same recording, different REPRO_REPLAY_THREADS → byte-identical results."""

    def test_gradient_replay(self, rng, monkeypatch, threads):
        weight = Tensor(rng.normal(size=(16, 4)), requires_grad=True, is_parameter=True)
        trace = _wide_grad_trace(weight)
        eager, captured = EagerExecution(), CapturedExecution()
        monkeypatch.setenv("REPRO_REPLAY_THREADS", threads)
        # Exercise the real parallel machinery even on few-core CI hosts.
        monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
        for trial in range(4):
            batch = rng.normal(size=(8, 16))
            expected = eager.run(trace, batch)
            actual = captured.run(trace, batch, key="wide")
            np.testing.assert_array_equal(
                np.array(expected.input.grad),
                np.array(actual.input.grad),
                err_msg=f"threads={threads} trial={trial}",
            )
            assert expected.objective.data.tobytes() == actual.objective.data.tobytes()
        recording = next(iter(captured._recordings.values()))
        assert recording.fused_chains >= len(_BRANCH_SCALES)
        assert recording.max_wave_width >= len(_BRANCH_SCALES)

    def test_inference_replay(self, rng, monkeypatch, threads):
        weight = Tensor(rng.normal(size=(16, 4)), requires_grad=True, is_parameter=True)
        trace = _wide_inference_trace(weight)
        captured = CapturedInference()
        monkeypatch.setenv("REPRO_REPLAY_THREADS", threads)
        monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
        for trial in range(4):
            batch = rng.normal(size=(8, 16))
            expected = trace(batch).output.data.copy()
            actual = captured.run(trace, batch, key="wide-inf").output.data
            assert expected.tobytes() == actual.tobytes(), (
                f"threads={threads} trial={trial}"
            )
        recording = next(iter(captured._recordings.values()))
        assert recording.replays == 2  # run 1 is eager warm-up, run 2 records
        assert recording.max_wave_width >= len(_BRANCH_SCALES)

    def test_eager_fallback_path(self, rng, monkeypatch, threads):
        """Graphs with non-replayable ops fall back to eager at any thread count."""
        monkeypatch.setenv("REPRO_REPLAY_THREADS", threads)
        drop_rng = np.random.default_rng(3)

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)
            return TraceHandles(
                objective=F.dropout(x.tanh(), rate=0.5, rng=drop_rng).sum(), input=x
            )

        captured = CapturedExecution()
        for _ in range(3):
            handles = captured.run(trace, rng.normal(size=(4, 8)), key="drop")
            assert handles.input.grad is not None
        assert captured.stats.fallbacks >= 1
        assert captured.stats.replays == 0


class TestIntraOpSharding:
    def test_large_saved_free_chain_shards(self, rng):
        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = ((x * 2.0 + 0.5).tanh().exp() + 1.0).sqrt()
            return InferenceHandles(input=x, output=out)

        recording = InferenceRecording(trace(rng.normal(size=(256, 256))))
        (step,) = recording._plan.steps
        assert isinstance(step, _FusedChain)
        assert step.shardable
        units = step.units(4)
        assert len(units) == 4
        assert recording._plan.parallelizable

    def test_sharded_replay_bit_identical(self, rng, monkeypatch):
        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = ((x * 2.0 + 0.5).tanh().exp() + 1.0).sqrt()
            return InferenceHandles(input=x, output=out)

        batch = rng.normal(size=(256, 256))
        recording = InferenceRecording(trace(batch))
        monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "1")
        serial = recording.replay(batch).output.data.copy()
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        sharded = recording.replay(batch).output.data
        assert serial.tobytes() == sharded.tobytes()
        assert serial.tobytes() == trace(batch).output.data.tobytes()

    def test_broadcast_operands_pass_through_whole(self, rng, monkeypatch):
        """Size-1 and lower-rank operands must not be row-sliced."""
        bias_row = Tensor(rng.normal(size=(1, 128)))
        bias_vec = Tensor(rng.normal(size=(128,)))

        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = ((x + bias_row) * 0.5 + bias_vec).tanh()
            return InferenceHandles(input=x, output=out)

        batch = rng.normal(size=(512, 128))
        recording = InferenceRecording(trace(batch))
        assert any(step.shardable for step in recording._plan.steps)
        monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        replayed = recording.replay(batch).output.data
        assert replayed.tobytes() == trace(batch).output.data.tobytes()

    def test_gelu_chain_stays_unsharded(self, rng):
        """Ops that refresh record-time saved buffers cannot shard."""

        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = F.gelu(x * 2.0)
            return InferenceHandles(input=x, output=out)

        recording = InferenceRecording(trace(rng.normal(size=(256, 256))))
        assert not any(step.shardable for step in recording._plan.steps)


class TestParallelProfiler:
    def test_parallel_replays_report_wave_stats(self, rng, monkeypatch):
        weight = Tensor(rng.normal(size=(16, 4)), requires_grad=True, is_parameter=True)
        trace = _wide_grad_trace(weight)
        captured = CapturedExecution()
        monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        with profile_ops() as profiler:
            for _ in range(3):
                captured.run(trace, rng.normal(size=(64, 16)), key="prof")
        stats = profiler.as_dict()
        assert captured.stats.replays == 1  # run 1 is eager warm-up, run 2 records
        row = stats["captured_replay_parallel"]
        assert row["calls"] == 1
        meta = row["meta"]
        assert meta["threads"] == 4
        assert meta["waves"] >= 2
        assert meta["max_wave_width"] >= len(_BRANCH_SCALES)
        assert 0.0 < meta["utilization"] <= 1.0
        assert "captured_replay_parallel" in profiler.table()

    def test_serial_replays_keep_the_classic_row(self, rng, monkeypatch):
        weight = Tensor(rng.normal(size=(16, 4)), requires_grad=True, is_parameter=True)
        trace = _wide_grad_trace(weight)
        captured = CapturedExecution()
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "1")
        with profile_ops() as profiler:
            for _ in range(3):
                captured.run(trace, rng.normal(size=(8, 16)), key="prof")
        stats = profiler.as_dict()
        assert stats["captured_replay"]["calls"] == 1
        assert "captured_replay_parallel" not in stats

    def test_profiler_record_is_thread_safe(self):
        from repro.autodiff.profiler import OpProfiler

        profiler = OpProfiler()
        per_thread, workers = 500, 8

        def hammer():
            for _ in range(per_thread):
                profiler.record("hammer", 0.001, 10, 20, meta={"width": 3})

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stat = profiler.as_dict()["hammer"]
        assert stat["calls"] == per_thread * workers
        assert stat["flops"] == 10 * per_thread * workers
        assert stat["meta"]["width"] == 3


class TestPlanBuilderUnits:
    def test_plan_iterates_steps_and_counts(self, rng):
        x = Tensor(rng.normal(size=(4, 4)), requires_grad=True, is_input=True)
        nodes = []
        value = x
        for _ in range(3):
            value = value.tanh()
            nodes.append(value)
        plan = _build_replay_plan(nodes)
        assert len(plan) == 1  # one fused chain
        assert plan.wave_count == 1
        assert list(plan) == plan.steps
