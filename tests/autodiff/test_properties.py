"""Hypothesis property-based tests for the autodiff engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, cross_entropy, softmax, unbroadcast

_FINITE = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def _arrays(max_dims: int = 3, max_side: int = 5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=_FINITE,
    )


@settings(max_examples=40, deadline=None)
@given(_arrays())
def test_addition_gradient_is_ones(values):
    tensor = Tensor(values, requires_grad=True)
    (tensor + 1.0).sum().backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(values))


@settings(max_examples=40, deadline=None)
@given(_arrays(), st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
def test_scalar_multiplication_gradient(values, scale):
    tensor = Tensor(values, requires_grad=True)
    (tensor * scale).sum().backward()
    np.testing.assert_allclose(tensor.grad, np.full_like(values, scale), atol=1e-12)

@settings(max_examples=40, deadline=None)
@given(_arrays())
def test_sum_then_backward_matches_shape(values):
    tensor = Tensor(values, requires_grad=True)
    tensor.sum().backward()
    assert tensor.grad.shape == values.shape


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 6), st.integers(2, 6)),
        elements=_FINITE,
    )
)
def test_softmax_outputs_are_probabilities(logits):
    from tests.autodiff.conftest import value_atol

    out = softmax(Tensor(logits), axis=-1).data
    assert np.all(out >= 0.0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(len(logits)), atol=value_atol())


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 6), st.integers(2, 6)),
        elements=_FINITE,
    ),
    st.data(),
)
def test_cross_entropy_is_non_negative_and_finite(logits, data):
    labels = data.draw(
        arrays(dtype=np.int64, shape=(logits.shape[0],), elements=st.integers(0, logits.shape[1] - 1))
    )
    loss = cross_entropy(Tensor(logits, requires_grad=True), labels)
    assert np.isfinite(float(loss.data))
    assert float(loss.data) >= 0.0


@settings(max_examples=40, deadline=None)
@given(_arrays(max_dims=2), st.integers(min_value=1, max_value=4))
def test_unbroadcast_inverts_broadcasting(values, repeat):
    """Summing a broadcast gradient must equal scaling the original gradient."""
    expanded = np.broadcast_to(values, (repeat,) + values.shape)
    reduced = unbroadcast(np.array(expanded), values.shape)
    np.testing.assert_allclose(reduced, values * repeat, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=_FINITE),
    arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=_FINITE),
)
def test_elementwise_multiplication_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) * Tensor(b)).data
    right = (Tensor(b) * Tensor(a)).data
    np.testing.assert_allclose(left, right)


@settings(max_examples=30, deadline=None)
@given(
    arrays(dtype=np.float64, shape=st.tuples(st.integers(2, 5), st.integers(2, 5)), elements=_FINITE)
)
def test_gradients_are_always_finite(values):
    tensor = Tensor(values, requires_grad=True)
    out = softmax(tensor.tanh() * 2.0, axis=-1).sum()
    out.backward()
    assert np.isfinite(tensor.grad).all()
