"""Bit-identity tests for batch-axis sharding of heavyweight kernels.

conv2d, matmul and the pooling ops compute in *canonical bands* whenever
their shapes pass :func:`repro.autodiff.sharding.banded` (a pure function of
shapes and FLOPs), and replays may split those bands into contiguous shard
spans.  The invariant under test: **every shard count and every thread count
produces byte-identical forward values and gradients** — the cost model only
moves bands between threads, it never changes what they compute.

Most fixtures lower ``REPRO_SHARD_MIN_FLOPS`` so small test tensors band;
the floor is read per call, so each test's recordings and replays see one
consistent value.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.autodiff import (
    CapturedExecution,
    EagerExecution,
    Tensor,
    TraceHandles,
    frozen_parameters,
    get_default_dtype,
    profile_ops,
    set_default_dtype,
)
from repro.autodiff import functional as F
from repro.autodiff import ops as op_registry
from repro.autodiff import sharding
from repro.autodiff.conv import avg_pool2d, conv2d, max_pool2d
from repro.autodiff.numeric import numerical_gradient, relative_error


@pytest.fixture
def low_floor(monkeypatch):
    """Band every heavy kernel call the fixtures make, however small."""
    monkeypatch.setenv("REPRO_SHARD_MIN_FLOPS", "1")


@pytest.fixture
def force_parallel(monkeypatch):
    """Bypass the core clamp so parallel paths run on few-core CI hosts."""
    monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")


class TestCostModel:
    def test_banded_is_shape_and_flop_driven(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_MIN_FLOPS", raising=False)
        floor = sharding.min_band_flops()
        assert not sharding.banded(1, 10 * floor)  # one band = nothing to split
        assert sharding.banded(2, floor)
        assert not sharding.banded(2, floor - 1)
        # Many tiny bands fail the per-band floor even when the total passes.
        assert not sharding.banded(floor, floor)

    def test_floor_env_override_and_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MIN_FLOPS", "123")
        assert sharding.min_band_flops() == 123
        monkeypatch.setenv("REPRO_SHARD_MIN_FLOPS", "lots")
        with pytest.raises(ValueError, match="REPRO_SHARD_MIN_FLOPS"):
            sharding.min_band_flops()

    def test_decide_shards_caps(self):
        seconds = 100 * sharding.MIN_SHARD_SECONDS
        assert sharding.decide_shards(seconds, 8, 1) == 1  # no workers
        assert sharding.decide_shards(seconds, 1, 8) == 1  # nothing to split
        assert sharding.decide_shards(seconds, 8, 4) == 4  # worker cap
        assert sharding.decide_shards(seconds, 2, 8) == 2  # band cap
        # Cost cap: a step worth ~2 min slices stays in 2 pieces on 8 workers.
        assert sharding.decide_shards(2.5 * sharding.MIN_SHARD_SECONDS, 64, 8) == 2

    def test_partition_is_contiguous_and_ragged_aware(self):
        assert sharding.partition(7, 3) == [(0, 3), (3, 5), (5, 7)]
        assert sharding.partition(4, 9) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        for units, shards in [(7, 2), (64, 5), (3, 3), (5, 1)]:
            spans = sharding.partition(units, shards)
            assert spans[0][0] == 0 and spans[-1][1] == units
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    def test_fan_out_wins_requires_modeled_win(self):
        assert not sharding.fan_out_wins(1.0, 1, 8)  # one unit
        assert not sharding.fan_out_wins(1.0, 8, 1)  # one worker
        assert sharding.fan_out_wins(10e-3, 4, 4)
        # Tiny waves never pay for their task overhead.
        assert not sharding.fan_out_wins(50e-6, 4, 4)

    def test_effective_workers_clamps_to_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAY_FORCE_PARALLEL", raising=False)
        cores = os.cpu_count() or 1
        assert sharding.effective_workers(1) == 1
        assert sharding.effective_workers(16 * cores) == cores
        monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
        assert sharding.effective_workers(16 * cores) == 16 * cores


def _apply(name, arrays, params):
    tensors = [Tensor(array, requires_grad=True) for array in arrays]
    return op_registry.apply(name, tensors, params)


def _shard_parity_cases(rng):
    """(name, arrays, params) triples with ragged batch sizes."""
    return [
        ("conv2d", [rng.normal(size=(7, 3, 8, 8)), rng.normal(size=(4, 3, 3, 3)),
                    rng.normal(size=(4,))], {"stride": 1, "padding": 1}),
        ("conv2d", [rng.normal(size=(5, 2, 6, 6)), rng.normal(size=(3, 2, 3, 3))],
         {"stride": 2, "padding": 0}),
        ("matmul", [rng.normal(size=(200, 16)), rng.normal(size=(16, 8))], {}),
        ("matmul", [rng.normal(size=(7, 12, 6)), rng.normal(size=(6, 9))], {}),
        ("matmul", [rng.normal(size=(5, 8, 4)), rng.normal(size=(5, 4, 6))], {}),
        ("max_pool2d", [rng.normal(size=(7, 4, 8, 8))], {"kernel": 2, "stride": 2}),
        ("avg_pool2d", [rng.normal(size=(7, 4, 8, 8))], {"kernel": 2, "stride": 2}),
    ]


class TestShardCountParity:
    def test_forward_shard_matches_eager_at_any_shard_count(self, rng, low_floor):
        """Re-running forward_shard over {1, 2, 5, batch} spans reproduces eager."""
        for name, arrays, params in _shard_parity_cases(rng):
            node = _apply(name, arrays, params)
            call = node._op_call
            op = call.op
            in_shapes = tuple(t.data.shape for t in call.tensors)
            units = op.shard_units(in_shapes, node.data.shape, call.params, node.data.itemsize)
            assert units >= 2, f"{name}: fixture too small to band"
            inputs = tuple(t.data for t in call.tensors)
            for shards in {1, 2, 5, units}:
                out = np.empty_like(node.data)
                for start, stop in sharding.partition(units, shards):
                    op.forward_shard(inputs, call.params, call.saved, out, start, stop)
                assert out.tobytes() == node.data.tobytes(), f"{name} shards={shards}"

    def test_matmul_below_one_band_stays_whole(self, rng):
        """2-D matmuls under the canonical band height never shard."""
        a, b = rng.normal(size=(32, 64)), rng.normal(size=(64, 16))
        node = _apply("matmul", [a, b], {})
        op = node._op_call.op
        assert op.shard_units((a.shape, b.shape), node.data.shape, {}, 8) == 0
        landed = tuple(t.data for t in node._op_call.tensors)
        assert node.data.tobytes() == (landed[0] @ landed[1]).tobytes()

    def test_backward_matches_serial_at_every_thread_count(self, rng, low_floor, force_parallel, monkeypatch):
        """Sharded backward (active runner) is byte-identical to runnerless."""
        from repro.autodiff.capture import _shared_executor

        for name, arrays, params in _shard_parity_cases(rng):
            grads = {}
            for workers in (1, 2, 8):
                node = _apply(name, arrays, params)
                probe = np.random.default_rng(11).normal(size=node.shape)
                if workers == 1:
                    node.backward(probe)
                else:
                    runner = sharding.ShardRunner(_shared_executor(workers), workers)
                    with sharding.runner_scope(runner):
                        node.backward(probe)
                grads[workers] = [np.array(t.grad) for t in node.parents]
            for workers in (2, 8):
                for serial, threaded in zip(grads[1], grads[workers]):
                    assert serial.tobytes() == threaded.tobytes(), (
                        f"{name} workers={workers}"
                    )


def _tower_weights(rng, dtype):
    return {
        "w1": Tensor(rng.normal(size=(8, 3, 3, 3)).astype(dtype) * 0.2,
                     requires_grad=True, is_parameter=True),
        "b1": Tensor(rng.normal(size=(8,)).astype(dtype) * 0.1,
                     requires_grad=True, is_parameter=True),
        "w2": Tensor(rng.normal(size=(8, 8, 3, 3)).astype(dtype) * 0.2,
                     requires_grad=True, is_parameter=True),
        "head": Tensor(rng.normal(size=(128, 5)).astype(dtype) * 0.2,
                       requires_grad=True, is_parameter=True),
    }


def _tower_trace(weights):
    """conv → relu → max_pool → conv → avg_pool → flatten → matmul head."""

    def trace(array: np.ndarray) -> TraceHandles:
        x = Tensor(array, requires_grad=True, is_input=True)
        h = conv2d(x, weights["w1"], weights["b1"], stride=1, padding=1)
        h = F.relu(h)
        h = max_pool2d(h, 2)
        h = conv2d(h, weights["w2"], stride=1, padding=1)
        h = avg_pool2d(h, 2)
        logits = h.reshape(h.shape[0], -1) @ weights["head"]
        return TraceHandles(objective=(logits * logits).sum(), input=x)

    return trace


class TestCapturedTowerParity:
    @pytest.mark.parametrize("threads", ["1", "2", "8"])
    def test_replayed_tower_grads_match_eager(self, rng, low_floor, force_parallel, monkeypatch, threads):
        monkeypatch.setenv("REPRO_REPLAY_THREADS", threads)
        dtype = get_default_dtype()
        weights = _tower_weights(rng, dtype)
        trace = _tower_trace(weights)
        eager, captured = EagerExecution(), CapturedExecution()
        for trial in range(4):
            batch = rng.normal(size=(6, 3, 16, 16)).astype(dtype)
            expected = eager.run(trace, batch)
            actual = captured.run(trace, batch, key="tower")
            assert expected.objective.data.tobytes() == actual.objective.data.tobytes(), (
                f"threads={threads} trial={trial}"
            )
            assert np.array(expected.input.grad).tobytes() == np.array(actual.input.grad).tobytes(), (
                f"threads={threads} trial={trial}"
            )
        assert captured.stats.replays >= 2

    def test_replay_is_sharded_and_reports_shard_stats(self, rng, low_floor, force_parallel, monkeypatch):
        from repro.autodiff.capture import _ShardedNode

        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        dtype = get_default_dtype()
        weights = _tower_weights(rng, dtype)
        trace = _tower_trace(weights)
        captured = CapturedExecution()
        batch = rng.normal(size=(8, 3, 16, 16)).astype(dtype)
        with profile_ops() as profiler:
            for _ in range(4):
                captured.run(trace, batch, key="tower-prof")
        recording = next(iter(captured._recordings.values()))
        sharded_ops = {
            step.call.op.name
            for step in recording._plan.steps
            if isinstance(step, _ShardedNode)
        }
        assert {"conv2d", "max_pool2d", "avg_pool2d"} <= sharded_ops
        stats = profiler.as_dict()
        row = stats["conv2d_sharded"]
        assert row["calls"] >= 2
        assert row["meta"]["shards"] >= 2
        assert row["meta"]["shard_elements"] >= 1
        assert "conv2d_grad_sharded" in stats

    def test_frozen_parameters_skip_weight_grads_in_sharded_replays(self, rng, low_floor, force_parallel, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        dtype = get_default_dtype()
        weights = _tower_weights(rng, dtype)
        trace = _tower_trace(weights)
        eager, captured = EagerExecution(), CapturedExecution()
        with frozen_parameters(weights.values()):
            for trial in range(4):
                batch = rng.normal(size=(6, 3, 16, 16)).astype(dtype)
                expected = eager.run(trace, batch)
                actual = captured.run(trace, batch, key="tower-frozen")
                assert np.array(expected.input.grad).tobytes() == np.array(actual.input.grad).tobytes(), (
                    f"trial={trial}"
                )
        assert captured.stats.replays >= 2
        for tensor in weights.values():
            assert tensor.grad is None


class TestBandedGradcheck:
    """Numeric gradchecks of the banded kernel paths.

    The registry-wide gradcheck sweep runs under the default FLOP floor,
    where most samples stay whole; these re-run every shard-marked op's
    samples with the floor at 1 so the banded forward/backward code paths
    are the ones being differentiated.
    """

    @pytest.fixture(autouse=True)
    def _banded_float64(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MIN_FLOPS", "1")
        previous = get_default_dtype()
        set_default_dtype("float64")
        yield
        set_default_dtype(previous)

    @pytest.mark.parametrize("name", ["conv2d", "matmul", "max_pool2d", "avg_pool2d"])
    def test_banded_gradcheck(self, name):
        op = op_registry.get(name)
        for sample in op.samples:
            seed = zlib.crc32(f"banded:{name}:{sample.shapes}".encode())
            arrays = [
                np.random.default_rng(seed + i).uniform(sample.low, sample.high, size=shape)
                for i, shape in enumerate(sample.shapes)
            ]
            tensors = [Tensor(array.copy(), requires_grad=True) for array in arrays]
            output = op_registry.apply(op, tensors, dict(sample.params))
            probe = np.random.default_rng(seed + 99).normal(size=output.shape)
            output.backward(probe)
            for position, tensor in enumerate(tensors):
                def scalar(array: np.ndarray) -> float:
                    operands = [Tensor(a.copy()) for a in arrays]
                    operands[position] = Tensor(array)
                    out = op_registry.apply(op, operands, dict(sample.params))
                    return float((out.data * probe).sum())

                numeric = numerical_gradient(scalar, arrays[position].copy())
                error = relative_error(tensor.grad, numeric)
                assert error < 1e-5, f"{name} input {position}: {error:.2e}"
