"""Tests of the elementwise fusion pass in captured-graph replays.

A recording's replay plan groups consecutive elementwise registry ops into
:class:`~repro.autodiff.capture._FusedChain` steps that write each node's
buffer in place through the kernels' ``out=`` support — no temporaries, no
copy-backs.  The invariant under test: fused replays are bit-identical to
eager execution, for gradients and for forward-only inference, in both
default dtypes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import (
    CapturedExecution,
    CapturedInference,
    EagerExecution,
    GraphRecording,
    InferenceHandles,
    Tensor,
    TraceHandles,
    no_grad,
)
from repro.autodiff import functional as F
from repro.autodiff.capture import _FusedChain, _ReplayNode


def _chain_trace(weights):
    """An MLP whose hot path is an elementwise chain (gelu -> tanh -> scale)."""
    w1, w2 = weights

    def trace(array: np.ndarray) -> TraceHandles:
        x = Tensor(array, requires_grad=True, is_input=True)
        hidden = F.gelu(x @ w1).tanh() * 2.0 + 0.5
        logits = F.sigmoid(hidden) @ w2
        labels = np.zeros(len(array), dtype=np.int64)
        return TraceHandles(
            objective=F.cross_entropy(logits, labels, reduction="sum"), input=x
        )

    return trace


@pytest.fixture()
def chain_mlp(rng):
    w1 = Tensor(rng.normal(size=(6, 8)), requires_grad=True, is_parameter=True)
    w2 = Tensor(rng.normal(size=(8, 3)), requires_grad=True, is_parameter=True)
    return _chain_trace((w1, w2)), rng


class TestGradientFusion:
    def test_chains_are_fused(self, chain_mlp):
        trace, rng = chain_mlp
        recording = GraphRecording(EagerExecution().run(trace, rng.normal(size=(4, 6))))
        assert recording.fused_chains >= 1
        assert recording.fused_ops >= 4  # gelu, tanh, mul, add, sigmoid
        kinds = [type(step) for step in recording._plan]
        assert _FusedChain in kinds and _ReplayNode in kinds

    def test_fused_replay_gradients_bit_identical_to_eager(self, chain_mlp):
        trace, rng = chain_mlp
        eager, captured = EagerExecution(), CapturedExecution()
        for trial in range(5):
            batch = rng.normal(size=(4, 6))
            expected = np.array(eager.run(trace, batch).input.grad)
            actual = np.array(captured.run(trace, batch, key="chain").input.grad)
            np.testing.assert_array_equal(expected, actual, err_msg=f"trial {trial}")
        assert captured.stats.replays == 3
        recording = next(iter(captured._recordings.values()))
        assert recording.fused_chains >= 1

    def test_fused_replay_objective_bit_identical(self, chain_mlp):
        trace, rng = chain_mlp
        eager, captured = EagerExecution(), CapturedExecution()
        for _ in range(3):
            batch = rng.normal(size=(4, 6))
            expected = np.array(eager.run(trace, batch).objective.data)
            actual = np.array(captured.run(trace, batch, key="chain").objective.data)
            np.testing.assert_array_equal(expected, actual)

    def test_broadcast_binary_ops_fuse_correctly(self, rng):
        bias = Tensor(rng.normal(size=(1, 8)), requires_grad=True, is_parameter=True)

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)
            return TraceHandles(objective=((x + bias).tanh() * x).sum(), input=x)

        eager, captured = EagerExecution(), CapturedExecution()
        for _ in range(4):
            batch = rng.normal(size=(4, 8))
            expected = np.array(eager.run(trace, batch).input.grad)
            actual = np.array(captured.run(trace, batch, key="b").input.grad)
            np.testing.assert_array_equal(expected, actual)
        recording = next(iter(captured._recordings.values()))
        assert recording.fused_ops >= 3

    def test_dtype_mismatched_nodes_stay_unfused_but_replay(self, rng):
        """A node whose buffer dtype differs from its compute dtype must not
        run through ``out=`` (that would change the rounding); it falls back
        to the thunk-then-copy path inside the same plan."""
        w = Tensor(rng.normal(size=(4, 4)), requires_grad=True, is_parameter=True)
        w.data = w.data.astype(np.float32)  # externally-loaded f32 weights

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)
            return TraceHandles(objective=(x @ w).exp().sum(), input=x)

        eager, captured = EagerExecution(), CapturedExecution()
        for _ in range(4):
            batch = rng.normal(size=(2, 4))
            expected = np.array(eager.run(trace, batch).input.grad)
            actual = np.array(captured.run(trace, batch, key="mix").input.grad)
            np.testing.assert_array_equal(expected, actual)
        recording = next(iter(captured._recordings.values()))
        # The exp node computes in f32 (its operand dtype) but holds an f64
        # buffer, so the fusion eligibility check must reject it.
        assert recording.fused_chains == 0


class TestInferenceFusion:
    def test_forward_only_replay_fuses_and_matches(self, rng):
        w1 = Tensor(rng.normal(size=(6, 8)), requires_grad=True, is_parameter=True)
        w2 = Tensor(rng.normal(size=(8, 3)), requires_grad=True, is_parameter=True)

        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = F.sigmoid(F.gelu(x @ w1).tanh() * 0.5) @ w2
            return InferenceHandles(input=x, output=out)

        captured = CapturedInference()
        for trial in range(4):
            batch = rng.normal(size=(4, 6))
            expected = np.array(trace(batch).output.data)
            actual = np.array(captured.run(trace, batch, key="inf").output.data)
            np.testing.assert_array_equal(expected, actual, err_msg=f"trial {trial}")
        recording = next(iter(captured._recordings.values()))
        assert recording.fused_chains >= 1
        assert recording.replays == 2

    def test_fused_plan_preserves_node_count(self, rng):
        w = Tensor(rng.normal(size=(4, 4)), requires_grad=True, is_parameter=True)

        def trace(array):
            with no_grad():
                x = Tensor(array, is_input=True)
                out = (x @ w).exp().tanh().sqrt()
            return InferenceHandles(input=x, output=out)

        from repro.autodiff import InferenceRecording

        recording = InferenceRecording(trace(np.abs(rng.normal(size=(2, 4)))))
        # len() counts replayed nodes whether fused or not.
        assert len(recording) == 4  # matmul + exp + tanh + sqrt
        assert recording.fused_ops == 3
