"""Gradient-correctness and graph-mechanics tests for the Tensor engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    concat,
    no_grad,
    numerical_gradient,
    relative_error,
    stack,
    topological_order,
    unbroadcast,
)

from tests.autodiff.conftest import away_from, grad_check_settings


def check_gradient(build, x0: np.ndarray, tol: float | None = None) -> None:
    """Compare the analytic input gradient of ``build`` against finite differences."""
    eps, default_tol = grad_check_settings()
    tol = tol if tol is not None else default_tol
    probe_holder = {}

    def scalar(array: np.ndarray) -> float:
        out = build(Tensor(array))
        if "probe" not in probe_holder:
            probe_holder["probe"] = np.random.default_rng(0).normal(size=out.shape)
        return float((out.data * probe_holder["probe"]).sum())

    tensor = Tensor(x0.copy(), requires_grad=True)
    output = build(tensor)
    if "probe" not in probe_holder:
        probe_holder["probe"] = np.random.default_rng(0).normal(size=output.shape)
    output.backward(probe_holder["probe"])
    numeric = numerical_gradient(scalar, x0.copy(), eps=eps)
    assert relative_error(tensor.grad, numeric) < tol


class TestArithmeticGradients:
    @pytest.mark.parametrize(
        "build",
        [
            lambda t: t + 2.0,
            lambda t: 2.0 + t,
            lambda t: t - 1.5,
            lambda t: 1.5 - t,
            lambda t: t * 3.0,
            lambda t: t / 2.0,
            lambda t: 2.0 / (t + 3.0),
            lambda t: -t,
            lambda t: t**3,
            lambda t: t.abs(),
            lambda t: t.exp(),
            lambda t: (t + 3.0).log(),
            lambda t: (t + 3.0).sqrt(),
            lambda t: t.tanh(),
            lambda t: t.maximum(0.1),
            lambda t: t.minimum(0.3),
        ],
        ids=[
            "add", "radd", "sub", "rsub", "mul", "div", "rdiv", "neg", "pow",
            "abs", "exp", "log", "sqrt", "tanh", "maximum", "minimum",
        ],
    )
    def test_unary_and_scalar_ops(self, build, rng):
        # Clear every kink any of the parametrised ops has (0 for relu-like
        # ops and the pow zero-gradient point, 0.1 / 0.3 for the thresholds).
        check_gradient(build, away_from(rng.normal(size=(3, 4)), points=(0.0, 0.1, 0.3)))

    def test_tensor_tensor_binary_ops(self, rng):
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: t * other + other / (t + 5.0), rng.normal(size=(3, 4)))

    def test_broadcast_add_gradient(self, rng):
        bias = Tensor(rng.normal(size=(4,)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = (x + bias).sum()
        out.backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_matmul_gradient(self, rng):
        weight = Tensor(rng.normal(size=(4, 5)))
        check_gradient(lambda t: t @ weight, rng.normal(size=(3, 4)))

    def test_batched_matmul_gradient(self, rng):
        weight = Tensor(rng.normal(size=(2, 4, 5)))
        check_gradient(lambda t: t @ weight, rng.normal(size=(2, 3, 4)))

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** Tensor(np.ones(3))


class TestReductionGradients:
    @pytest.mark.parametrize(
        "build",
        [
            lambda t: t.sum(),
            lambda t: t.sum(axis=0),
            lambda t: t.sum(axis=1, keepdims=True),
            lambda t: t.mean(),
            lambda t: t.mean(axis=(0, 1), keepdims=True),
            lambda t: t.max(),
            lambda t: t.max(axis=1),
        ],
        ids=["sum", "sum_axis", "sum_keep", "mean", "mean_axes", "max", "max_axis"],
    )
    def test_reductions(self, build, rng):
        check_gradient(build, rng.normal(size=(4, 5)))


class TestShapeGradients:
    @pytest.mark.parametrize(
        "build",
        [
            lambda t: t.reshape(6, 2),
            lambda t: t.reshape(-1),
            lambda t: t.transpose((1, 0)),
            lambda t: t.swapaxes(0, 1),
            lambda t: t[1:, :2],
            lambda t: t[:, 0],
            lambda t: t.pad([(1, 0), (2, 1)]),
        ],
        ids=["reshape", "flatten", "transpose", "swapaxes", "slice", "index", "pad"],
    )
    def test_shape_ops(self, build, rng):
        check_gradient(build, rng.normal(size=(3, 4)))

    def test_concat_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = concat([a, b], axis=0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = (stack([a, b], axis=0) * 2.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))


class TestGraphMechanics:
    def test_gradient_accumulates_across_multiple_uses(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = (x * 2.0 + x * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_disables_graph(self):
        with no_grad():
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2.0
        assert not x.requires_grad
        assert not y.requires_grad
        assert y.backward_fn is None

    def test_detach_breaks_graph(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        y.sum()
        assert not y.requires_grad

    def test_zero_grad(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_topological_order_parents_before_children(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = x * 2.0
        z = (y + 1.0).sum()
        order = topological_order(z)
        positions = {node.node_id: index for index, node in enumerate(order)}
        assert positions[x.node_id] < positions[y.node_id] < positions[z.node_id]

    def test_node_ids_unique_and_increasing(self):
        a = Tensor(np.ones(2))
        b = Tensor(np.ones(2))
        assert b.node_id > a.node_id

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.ones((2, 3))))

    def test_input_and_parameter_flags(self):
        x = Tensor(np.ones(3), is_input=True)
        w = Tensor(np.ones(3), is_parameter=True)
        assert x.is_input and not x.is_parameter
        assert w.is_parameter and not w.is_input

    def test_backward_with_custom_seed_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        y = x * 3.0
        seed = np.array([[1.0, 0.0], [0.0, 2.0]])
        y.backward(seed)
        np.testing.assert_allclose(x.grad, 3.0 * seed)


class TestUnbroadcast:
    def test_identity_when_shapes_match(self, rng):
        grad = rng.normal(size=(3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (3, 4)), grad)

    def test_sums_leading_dimensions(self, rng):
        grad = rng.normal(size=(5, 3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (3, 4)), grad.sum(axis=0))

    def test_sums_size_one_dimensions(self, rng):
        grad = rng.normal(size=(3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (3, 1)), grad.sum(axis=1, keepdims=True))

    def test_scalar_target(self, rng):
        grad = rng.normal(size=(3, 4))
        np.testing.assert_allclose(unbroadcast(grad, ()), grad.sum())
