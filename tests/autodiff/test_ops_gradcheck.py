"""Registry-driven numeric gradient checks.

Every :class:`~repro.autodiff.ops.Op` in the registry is auto-parametrised
over its declared :class:`~repro.autodiff.ops.GradSample` configurations
(shapes, params, sampling range), so a new kernel *cannot ship* without
gradcheck coverage: an op registered with neither ``samples`` nor an explicit
``gradcheck_skip`` reason fails the enforcement test below.

Numeric differentiation needs double precision regardless of the suite's
``REPRO_DTYPE`` leg, so these tests pin the default dtype to float64 — the
float32 behaviour of the same kernels is covered by the dtype, fusion and
pool tests.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.autodiff import ops as op_registry
from repro.autodiff.numeric import numerical_gradient, relative_error
from repro.autodiff.tensor import Tensor, get_default_dtype, set_default_dtype

TOL = 1e-5


@pytest.fixture(autouse=True)
def _float64_default():
    previous = get_default_dtype()
    set_default_dtype("float64")
    yield
    set_default_dtype(previous)


def _cases():
    cases = []
    for name in op_registry.registered_ops():
        op = op_registry.get(name)
        for index, sample in enumerate(op.samples):
            cases.append(pytest.param(name, sample, id=f"{name}-{index}"))
    return cases


def _sample_inputs(sample, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.uniform(sample.low, sample.high, size=shape) for shape in sample.shapes]


@pytest.mark.parametrize("name,sample", _cases())
def test_registered_op_gradcheck(name, sample):
    """Analytic gradients of every registered op match finite differences."""
    op = op_registry.get(name)
    seed = zlib.crc32(f"{name}:{sample.shapes}:{sorted(map(str, sample.params))}".encode())
    arrays = _sample_inputs(sample, seed)
    tensors = [Tensor(array.copy(), requires_grad=True) for array in arrays]
    output = op_registry.apply(op, tensors, dict(sample.params))
    probe = np.random.default_rng(seed + 1).normal(size=output.shape)
    output.backward(probe)
    for position, tensor in enumerate(tensors):
        def scalar(array: np.ndarray) -> float:
            operands = [Tensor(a.copy()) for a in arrays]
            operands[position] = Tensor(array)
            out = op_registry.apply(op, operands, dict(sample.params))
            return float((out.data * probe).sum())

        numeric = numerical_gradient(scalar, arrays[position].copy())
        error = relative_error(tensor.grad, numeric)
        assert error < TOL, f"{name} input {position}: relative error {error:.2e}"


def test_every_registered_op_declares_gradcheck_coverage():
    """New kernels must ship samples (or an explicit, documented skip)."""
    for name in op_registry.registered_ops():
        op = op_registry.get(name)
        assert op.samples or op.gradcheck_skip, (
            f"op {name!r} is registered with neither gradcheck samples nor a "
            "gradcheck_skip reason; derive sample shapes from its shape rule"
        )
        if not op.samples:
            assert isinstance(op.gradcheck_skip, str) and op.gradcheck_skip


def test_sample_shapes_drive_real_dispatches():
    """Samples must be executable: forward runs and shapes are consistent."""
    for name in op_registry.registered_ops():
        op = op_registry.get(name)
        for sample in op.samples:
            arrays = _sample_inputs(sample, seed=0)
            output = op_registry.apply(op, [Tensor(a) for a in arrays], dict(sample.params))
            assert output.op == name
            assert np.isfinite(output.data).all()
