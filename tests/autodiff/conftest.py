"""Shared precision helpers for the autodiff test suite.

CI runs this directory under both ``REPRO_DTYPE=float64`` and ``float32``
(the fusion and pooling layers must be dtype-clean), so numeric-gradient
checks and value comparisons pick their finite-difference step and tolerance
from the active default dtype instead of assuming double precision.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import get_default_dtype


def is_float64() -> bool:
    return get_default_dtype() == np.dtype(np.float64)


def grad_check_settings() -> tuple[float, float]:
    """(finite-difference eps, relative-error tolerance) for gradchecks.

    float32 kernels quantise every function evaluation to ~1e-7 relative, so
    the central-difference stencil needs a wider step and a looser bar.
    """
    if is_float64():
        return 1e-5, 5e-5
    return 4e-3, 8e-2


def value_atol() -> float:
    """Absolute tolerance for forward-value comparisons."""
    return 1e-10 if is_float64() else 1e-5


def value_rtol() -> float:
    """Relative tolerance for inner-product / reduction comparisons."""
    return 1e-10 if is_float64() else 1e-4


def away_from(x: np.ndarray, points=(0.0,), margin: float = 0.05) -> np.ndarray:
    """Push samples a safe distance from an op's non-smooth points.

    A central-difference stencil straddling a kink (relu/abs at 0, the
    scalar thresholds of maximum/minimum) measures the wrong one-sided
    slope; the float32 stencil is wide enough (4e-3) to make this likely,
    so gradcheck inputs keep a ``margin`` of clearance.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    for point in points:
        delta = x - point
        close = np.abs(delta) < margin
        x[close] = point + np.where(delta[close] >= 0.0, margin, -margin)
    return x
