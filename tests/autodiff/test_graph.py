"""Tests for the computational-graph snapshot used by PELTA's Alg. 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import GraphSnapshot, ShieldRegion, Tensor, shield_scope
from repro.autodiff.functional import relu


def _small_graph():
    """Build x -> (x*W) -> relu -> sum with a parameter leaf."""
    x = Tensor(np.ones((2, 3)), requires_grad=True, is_input=True, name="x")
    w = Tensor(np.ones((3, 4)), requires_grad=True, is_parameter=True, name="w")
    hidden = x @ w
    activated = relu(hidden)
    loss = activated.sum()
    return x, w, hidden, activated, loss


class TestGraphSnapshot:
    def test_contains_all_ancestors(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        for tensor in (x, w, hidden, activated, loss):
            assert tensor.node_id in graph

    def test_topological_order(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        ids = [node.node_id for node in graph.nodes()]
        assert ids.index(x.node_id) < ids.index(hidden.node_id) < ids.index(loss.node_id)

    def test_leaves_inputs_parameters(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        leaf_ids = {node.node_id for node in graph.leaves()}
        assert leaf_ids == {x.node_id, w.node_id}
        assert [node.node_id for node in graph.inputs()] == [x.node_id]
        assert [node.node_id for node in graph.parameters()] == [w.node_id]

    def test_transforms_excludes_leaves(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        transform_ids = {node.node_id for node in graph.transforms()}
        assert x.node_id not in transform_ids
        assert hidden.node_id in transform_ids

    def test_parents_and_children(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        parent_ids = {node.node_id for node in graph.parents(hidden.node_id)}
        assert parent_ids == {x.node_id, w.node_id}
        child_ids = {node.node_id for node in graph.children(hidden.node_id)}
        assert child_ids == {activated.node_id}

    def test_ancestors_and_descendants(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        assert x.node_id in graph.ancestors(loss.node_id)
        assert loss.node_id in graph.descendants(x.node_id)
        assert loss.node_id not in graph.ancestors(x.node_id)

    def test_depth_from_inputs(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        depths = graph.depth_from_inputs()
        assert depths[x.node_id] == 0
        assert depths[hidden.node_id] == 1
        assert depths[activated.node_id] == 2
        assert depths[loss.node_id] == 3
        assert w.node_id not in depths  # parameters are not reachable from inputs

    def test_node_metadata(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        node = graph.node(hidden.node_id)
        assert node.op == "matmul"
        assert node.shape == (2, 4)
        assert node.is_transform
        assert node.nbytes == hidden.nbytes

    def test_len_matches_number_of_nodes(self):
        *_, loss = _small_graph()
        graph = GraphSnapshot(loss)
        assert len(graph) == len(graph.nodes())

    def test_node_costs_come_from_registry_metadata(self):
        x, w, hidden, activated, loss = _small_graph()
        graph = GraphSnapshot(loss)
        matmul = graph.node(hidden.node_id)
        assert matmul.flops == 2 * 2 * 4 * 3  # (2,3) @ (3,4)
        assert matmul.bytes_moved > 0
        assert graph.node(x.node_id).flops == 0  # leaves carry no kernel cost
        assert graph.total_flops() >= matmul.flops
        costs = graph.op_costs()
        assert costs["matmul"]["count"] == 1
        assert costs["relu"]["flops"] == activated.size
        assert "leaf" not in costs

    def test_created_shielded_survives_flag_clearing(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True, is_input=True)
        with shield_scope():
            hidden = x * 3.0
        hidden.shielded = False  # what the partition does to the frontier
        graph = GraphSnapshot(hidden.sum())
        assert not graph.node(hidden.node_id).shielded
        assert graph.node(hidden.node_id).created_shielded


class TestShieldScope:
    def test_tensors_created_inside_scope_are_tagged(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True, is_input=True)
        with shield_scope(name="stem") as region:
            hidden = x * 2.0
        outside = hidden + 1.0
        assert hidden.shielded
        assert not outside.shielded
        assert hidden in region.tensors

    def test_region_byte_accounting(self):
        region = ShieldRegion("r")
        leaf = Tensor(np.ones((4, 4)), requires_grad=True)
        with shield_scope(region):
            value = leaf * 2.0
        # The region holds the op output (and the scalar constant); gradients
        # add one extra copy of every grad-requiring tensor.
        assert region.nbytes(include_gradients=False) >= value.nbytes
        assert (
            region.nbytes(include_gradients=True)
            >= region.nbytes(include_gradients=False) + value.nbytes
        )

    def test_nested_scopes_register_in_innermost(self):
        outer = ShieldRegion("outer")
        inner = ShieldRegion("inner")
        with shield_scope(outer):
            with shield_scope(inner):
                tensor = Tensor(np.ones(3)) * 2.0
        assert tensor in inner.tensors
        assert tensor not in outer.tensors

    def test_graph_records_shield_flags(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True, is_input=True)
        with shield_scope():
            hidden = x * 3.0
        loss = hidden.sum()
        graph = GraphSnapshot(loss)
        assert graph.node(hidden.node_id).shielded
        assert not graph.node(loss.node_id).shielded
        assert hidden.node_id in graph.shielded_ids()
        assert loss.node_id not in graph.shielded_ids()
