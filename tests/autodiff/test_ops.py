"""Tests of the declarative op registry, buffer pool and per-op profiler."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.autodiff import (
    BufferPool,
    Tensor,
    active_buffer_pool,
    active_profiler,
    elementwise_ops,
    profile_ops,
    registered_ops,
    use_buffer_pool,
)
from repro.autodiff import functional as F
from repro.autodiff import ops as op_registry

#: Every op name the engine's dispatchers emit; keeps the registry honest
#: about coverage (a Tensor method dispatching an unregistered name raises).
EXPECTED_OPS = {
    "add", "sub", "mul", "div", "neg", "pow", "matmul",
    "exp", "log", "sqrt", "tanh", "abs", "maximum", "minimum",
    "sum", "mean", "max",
    "reshape", "transpose", "getitem", "pad", "concat", "stack",
    "relu", "sigmoid", "gelu", "softmax", "log_softmax",
    "nll_loss", "margin_loss", "dropout",
    "conv2d", "max_pool2d", "avg_pool2d",
}


class TestRegistry:
    def test_expected_ops_are_registered(self):
        assert set(registered_ops()) == EXPECTED_OPS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            op_registry.register(op_registry.get("add"))

    def test_unknown_op_lookup_raises(self):
        with pytest.raises(KeyError, match="unknown op"):
            op_registry.get("fused_multiply_add")

    def test_elementwise_flags(self):
        fusable = set(elementwise_ops())
        assert {"add", "mul", "exp", "tanh", "relu", "sigmoid", "gelu"} <= fusable
        assert {"matmul", "softmax", "sum", "conv2d", "reshape"}.isdisjoint(fusable)

    def test_dropout_is_not_replayable(self):
        assert not op_registry.get("dropout").replayable
        out = F.dropout(
            Tensor(np.ones((2, 2)), requires_grad=True),
            rate=0.5,
            rng=np.random.default_rng(0),
            training=True,
        )
        assert out.forward_fn is None


class TestDispatch:
    def test_node_metadata(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = a.exp()
        assert out.op == "exp"
        assert out.parents == (a,)
        assert out._op_call is not None
        assert out._op_call.op.name == "exp"
        assert out.forward_fn is not None

    def test_scalar_operands_are_coerced_to_leaf_tensors(self):
        out = Tensor(np.ones(3)) + 2.0
        assert len(out.parents) == 2
        assert out.parents[1].op == "leaf"
        np.testing.assert_array_equal(out.parents[1].data, 2.0)

    def test_out_kernels_are_bit_identical(self, rng):
        """Every elementwise kernel lands the same bits with and without out=."""
        for name in elementwise_ops():
            op = op_registry.get(name)
            sample = op.samples[0]
            arrays = [
                rng.uniform(sample.low, sample.high, size=shape) for shape in sample.shapes
            ]
            plain = op.forward(tuple(arrays), dict(sample.params), {}, None)
            buffer = np.empty_like(plain)
            landed = op.forward(tuple(arrays), dict(sample.params), {}, buffer)
            assert landed is buffer
            np.testing.assert_array_equal(plain, landed, err_msg=name)

    def test_cost_metadata(self):
        flops, moved = op_registry.get("matmul").cost_of(((3, 4), (4, 5)), (3, 5), {}, 8)
        assert flops == 2 * 3 * 5 * 4
        assert moved == (12 + 20 + 15) * 8
        flops, moved = op_registry.get("conv2d").cost_of(
            ((1, 3, 8, 8), (4, 3, 3, 3)), (1, 4, 6, 6), {"stride": 1, "padding": 0}, 4
        )
        assert flops == 2 * (1 * 4 * 6 * 6) * 3 * 3 * 3
        assert op_registry.get("reshape").cost_of(((3, 4),), (12,), {}, 8) == (0, 0)
        getitem = op_registry.get("getitem")
        assert getitem.cost_of(((4, 5),), (5,), {"index": 2}, 8) == (0, 0)  # view
        assert getitem.cost_of(
            ((4, 5),), (3, 5), {"index": np.array([0, 2, 2])}, 8
        ) == (0, 2 * 15 * 8)  # gather copies

    def test_gradsample_rejects_invalid_ranges(self):
        with pytest.raises(ValueError, match="positive"):
            op_registry.GradSample(shapes=((2,),), positive=True)
        with pytest.raises(ValueError, match="empty"):
            op_registry.GradSample(shapes=((2,),), low=1.0, high=1.0)

    def test_output_nbytes_matches_dense_array(self):
        op = op_registry.get("gelu")
        assert op.output_nbytes((2, 3, 4), np.float32) == 2 * 3 * 4 * 4
        assert op.output_nbytes((5,), np.float64) == 40


class TestBufferPool:
    def test_acquire_recycle_reuses_buffers(self):
        pool = BufferPool()
        first = pool.acquire((4, 4), np.float64)
        pool.recycle()
        second = pool.acquire((4, 4), np.float64)
        assert second is first
        assert pool.stats.allocations == 1
        assert pool.stats.reuses == 1

    def test_keys_split_by_shape_and_dtype(self):
        pool = BufferPool()
        pool.acquire((4,), np.float64)
        pool.recycle()
        assert pool.acquire((4,), np.float32).dtype == np.float32
        assert pool.stats.allocations == 2

    def test_dispatcher_reuses_pooled_buffers_across_steps(self, rng):
        x = Tensor(rng.normal(size=(16, 16)))
        with use_buffer_pool() as pool:
            for _ in range(5):
                result = (x.exp().tanh() * 2.0).data
                pool.recycle()
        # Warm after step one: every later step reuses, nothing new allocated.
        assert pool.stats.reuses >= 2 * pool.stats.allocations
        assert np.isfinite(result).all()

    def test_pooled_results_match_unpooled(self, rng):
        x = Tensor(rng.normal(size=(8, 8)))
        unpooled = ((x.exp() + 1.0).tanh() * 0.5).data.copy()
        with use_buffer_pool() as pool:
            pooled = ((x.exp() + 1.0).tanh() * 0.5).data.copy()
        assert pool.stats.allocations > 0
        np.testing.assert_array_equal(unpooled, pooled)

    def test_mixed_dtype_results_skip_the_pool(self, rng):
        """Non-default result dtypes keep compute-then-cast semantics."""
        from repro.autodiff import get_default_dtype

        default = get_default_dtype()
        other = np.dtype(np.float32 if default == np.float64 else np.float64)
        t = Tensor(np.ones(4))
        t.data = np.ones(4, dtype=other)  # simulate externally-loaded data
        with use_buffer_pool() as pool:
            out = t.exp()
        assert pool.stats.allocations == 0
        assert out.dtype == default  # cast on tensor creation, as unpooled

    def test_concurrent_hammer_never_aliases_buffers(self):
        """N threads acquiring at once must never receive the same array.

        Each worker stamps its buffers with a unique value, yields, and then
        checks the stamp survived — if two threads were ever handed the same
        array, one stamp overwrites the other and the check fails.
        """
        pool = BufferPool()
        workers, rounds, per_round = 8, 40, 4
        barrier = threading.Barrier(workers)
        failures: list[str] = []

        def hammer(tag: int) -> None:
            barrier.wait()
            for round_index in range(rounds):
                stamps = []
                for slot in range(per_round):
                    buffer = pool.acquire((64,), np.float64)
                    value = float(tag * 10_000 + round_index * 10 + slot)
                    buffer.fill(value)
                    stamps.append((buffer, value))
                for buffer, value in stamps:
                    if not (buffer == value).all():
                        failures.append(f"thread {tag} lost its stamp")
                for buffer, _ in stamps:
                    pool.release(buffer)

        threads = [threading.Thread(target=hammer, args=(tag,)) for tag in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        # Ledger bookkeeping stayed consistent under contention.
        assert pool.stats.allocations + pool.stats.reuses == workers * rounds * per_round

    def test_concurrent_recycle_keeps_ledger_consistent(self):
        """Acquire/recycle from many threads leaves no buffer lost or doubled."""
        pool = BufferPool()
        workers, rounds = 8, 50
        barrier = threading.Barrier(workers)

        def hammer() -> None:
            barrier.wait()
            for _ in range(rounds):
                pool.acquire((16,), np.float64)
                pool.recycle()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every buffer ever allocated is accounted for: free or outstanding.
        assert len(pool) == pool.stats.allocations
        assert pool.stats.recycles == workers * rounds

    def test_scope_is_thread_local_and_restored(self):
        assert active_buffer_pool() is None
        with use_buffer_pool() as pool:
            assert active_buffer_pool() is pool
            with use_buffer_pool() as inner:
                assert active_buffer_pool() is inner
            assert active_buffer_pool() is pool
        assert active_buffer_pool() is None


class TestProfiler:
    def test_dispatcher_feeds_active_profiler(self, rng):
        x = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(6, 3)))
        with profile_ops() as profiler:
            F.gelu(x @ w).sum().backward()
        stats = profiler.as_dict()
        assert stats["matmul"]["calls"] == 1
        assert stats["gelu"]["calls"] == 1
        assert stats["matmul"]["flops"] == 2 * 4 * 3 * 6
        assert profiler.total_seconds() >= 0.0
        assert "matmul" in profiler.table()

    def test_inactive_by_default(self):
        assert active_profiler() is None

    def test_nested_scopes_share_the_outer_profiler(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        with profile_ops() as outer:
            with profile_ops() as inner:
                x.exp()
            assert inner is outer
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_captured_replay_reports_wholesale(self, rng):
        from repro.autodiff import CapturedExecution, TraceHandles

        w = Tensor(rng.normal(size=(4, 3)), requires_grad=True, is_parameter=True)

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)
            return TraceHandles(objective=F.gelu(x @ w).sum(), input=x)

        captured = CapturedExecution()
        with profile_ops() as profiler:
            for _ in range(3):
                captured.run(trace, rng.normal(size=(2, 4)), key="p")
        assert profiler.as_dict()["captured_replay"]["calls"] == captured.stats.replays == 1
