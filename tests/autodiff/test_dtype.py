"""Tests of the configurable default floating dtype (REPRO_DTYPE satellite)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, get_default_dtype, set_default_dtype


@pytest.fixture(autouse=True)
def _restore_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDefaultDtype:
    def test_default_follows_environment(self):
        import os

        from repro.autodiff.tensor import _resolve_dtype

        expected = _resolve_dtype(os.environ.get("REPRO_DTYPE", "float64"))
        assert get_default_dtype() == expected
        assert Tensor([1.0, 2.0]).data.dtype == expected

    def test_set_default_dtype_affects_new_tensors(self):
        set_default_dtype("float32")
        assert get_default_dtype() == np.dtype(np.float32)
        assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert (Tensor([1.0]) + Tensor([2.0])).data.dtype == np.float32

    def test_aliases_and_numpy_dtypes_accepted(self):
        assert set_default_dtype("f32") == np.dtype(np.float32)
        assert set_default_dtype(np.float64) == np.dtype(np.float64)
        assert set_default_dtype("double") == np.dtype(np.float64)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype("float16")
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_initialisers_follow_the_default(self):
        from repro.nn import init

        set_default_dtype("float32")
        assert init.zeros((2, 2)).dtype == np.float32
        assert init.ones((2,)).dtype == np.float32
        assert init.xavier_uniform((4, 4)).dtype == np.float32
        assert init.kaiming_normal((4, 4)).dtype == np.float32

    def test_float32_training_and_attack_end_to_end(self):
        from repro.attacks import FGSM, make_attacker_view
        from repro.models.simple import SimpleCNN, SimpleCNNConfig
        from repro.nn.trainer import fit_classifier

        set_default_dtype("float32")
        model = SimpleCNN(
            SimpleCNNConfig(in_channels=3, num_classes=2, widths=(4, 8), image_size=8)
        )
        rng = np.random.default_rng(0)
        images = rng.uniform(size=(8, 3, 8, 8)).astype(np.float32)
        labels = np.array([0, 1] * 4)
        fit_classifier(model, images, labels, epochs=1, batch_size=4)
        for parameter in model.parameters():
            assert parameter.data.dtype == np.float32
        adversarials = (
            FGSM(epsilon=0.05).run(make_attacker_view(model), images, labels).adversarials
        )
        assert adversarials.dtype == np.float32
