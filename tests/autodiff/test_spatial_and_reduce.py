"""Bit-identity tests for tree-reduced gradients and batch-1 spatial banding.

Two invariants under test, both stronger than "numerically close":

* **Tree-reduced cross-batch gradients** — sharded backward kernels compute
  per-band partial gradients into pooled slabs and combine them through
  :func:`repro.autodiff.sharding.tree_reduce`, whose combine order is a pure
  function of the band count.  The reduced bytes must therefore be identical
  at every shard count and every thread count.

* **Spatial (H×W) banding for batch 1** — with a single sample there is no
  batch axis to shard, so conv2d and the pooling ops band over output rows
  instead (:data:`SPATIAL_BAND_ROWS` rows per band, halo-aware input
  windows).  im2col is pure copies, so the assembled unfold — and hence the
  banded forward — must be byte-identical to the whole-image path band
  layout notwithstanding.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.autodiff import (
    CapturedExecution,
    EagerExecution,
    Tensor,
    TraceHandles,
    get_default_dtype,
    profile_ops,
)
from repro.autodiff import functional as F
from repro.autodiff import ops as op_registry
from repro.autodiff import sharding
from repro.autodiff.conv import avg_pool2d, conv2d, im2col, im2col_into, max_pool2d
from repro.autodiff.pool import BufferPool


def _tower_weights(rng, dtype, head_features=128):
    return {
        "w1": Tensor(rng.normal(size=(8, 3, 3, 3)).astype(dtype) * 0.2,
                     requires_grad=True, is_parameter=True),
        "b1": Tensor(rng.normal(size=(8,)).astype(dtype) * 0.1,
                     requires_grad=True, is_parameter=True),
        "w2": Tensor(rng.normal(size=(8, 8, 3, 3)).astype(dtype) * 0.2,
                     requires_grad=True, is_parameter=True),
        "head": Tensor(rng.normal(size=(head_features, 5)).astype(dtype) * 0.2,
                       requires_grad=True, is_parameter=True),
    }


def _tower_trace(weights):
    """conv → relu → max_pool → conv → avg_pool → flatten → matmul head."""

    def trace(array: np.ndarray) -> TraceHandles:
        x = Tensor(array, requires_grad=True, is_input=True)
        h = conv2d(x, weights["w1"], weights["b1"], stride=1, padding=1)
        h = F.relu(h)
        h = max_pool2d(h, 2)
        h = conv2d(h, weights["w2"], stride=1, padding=1)
        h = avg_pool2d(h, 2)
        logits = h.reshape(h.shape[0], -1) @ weights["head"]
        return TraceHandles(objective=(logits * logits).sum(), input=x)

    return trace


@pytest.fixture
def low_floor(monkeypatch):
    """Band every heavy kernel call the fixtures make, however small."""
    monkeypatch.setenv("REPRO_SHARD_MIN_FLOPS", "1")


@pytest.fixture
def force_parallel(monkeypatch):
    """Bypass the core clamp so parallel paths run on few-core CI hosts."""
    monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")


def _sha(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


class TestTreeReduce:
    def test_single_slab_copies(self, rng):
        slab = rng.normal(size=(3, 4))
        out = np.empty_like(slab)
        sharding.tree_reduce([slab.copy()], out)
        assert out.tobytes() == slab.tobytes()

    @pytest.mark.parametrize("count", [2, 3, 5, 7, 8, 13])
    def test_sums_are_close_and_deterministic(self, rng, count):
        slabs = [rng.normal(size=(6, 5)) for _ in range(count)]
        out = np.empty((6, 5))
        sharding.tree_reduce([s.copy() for s in slabs], out)
        np.testing.assert_allclose(out, np.sum(slabs, axis=0), rtol=1e-9, atol=1e-12)
        again = np.empty((6, 5))
        sharding.tree_reduce([s.copy() for s in slabs], again)
        assert out.tobytes() == again.tobytes()

    def test_combine_order_is_a_function_of_count_alone(self, rng):
        """Filling leaves in any order (any worker schedule) changes nothing."""
        slabs = [rng.normal(size=(4, 4)) for _ in range(5)]
        expected = np.empty((4, 4))
        sharding.tree_reduce([s.copy() for s in slabs], expected)
        # Simulate out-of-order leaf completion: the slab *list* is always
        # indexed by band, so arrival order cannot matter — but prove the
        # tree itself differs from a naive left fold only in bits, not value.
        fold = slabs[0].copy()
        for slab in slabs[1:]:
            fold = fold + slab
        np.testing.assert_allclose(expected, fold, rtol=1e-9, atol=1e-12)


class TestReduceBands:
    """reduce_bands fans leaf computation out but fixes the combine order."""

    def _partial(self, bands, rng):
        partials = [rng.normal(size=(8, 6)) for _ in range(bands)]

        def fill(band: int, slab: np.ndarray) -> None:
            np.copyto(slab, partials[band])

        return fill

    def test_runnerless_matches_threaded_at_every_worker_count(self, rng):
        from repro.autodiff.capture import _shared_executor

        units = 7
        fill = self._partial(units, rng)
        seconds = 100 * sharding.MIN_SHARD_SECONDS
        serial = np.empty((8, 6))
        sharding.reduce_bands(units, seconds, fill, serial)
        for workers in (2, 8):
            runner = sharding.ShardRunner(_shared_executor(workers), workers)
            threaded = np.empty((8, 6))
            sharding.reduce_bands(units, seconds, fill, threaded, runner=runner)
            assert serial.tobytes() == threaded.tobytes(), f"workers={workers}"

    def test_profiler_row_records_shards_and_partial_bytes(self, rng):
        from repro.autodiff.capture import _shared_executor

        units = 6
        fill = self._partial(units, rng)
        out = np.empty((8, 6))
        runner = sharding.ShardRunner(_shared_executor(4), 4)
        with profile_ops() as profiler:
            sharding.reduce_bands(
                units, 100 * sharding.MIN_SHARD_SECONDS, fill, out, runner=runner, name="demo"
            )
        row = profiler.as_dict()["demo_treereduce"]
        assert row["calls"] == 1
        assert row["meta"]["shards"] >= 2
        assert row["meta"]["partial_bytes"] == units * out.nbytes


class TestGradTreeReduceParity:
    """Gradients are byte-identical across shard counts {1, 2, 5, units}."""

    def _grad_cases(self, rng):
        return [
            ("conv2d", [rng.normal(size=(6, 3, 8, 8)), rng.normal(size=(4, 3, 3, 3)),
                        rng.normal(size=(4,))], {"stride": 1, "padding": 1}),
            ("matmul", [rng.normal(size=(256, 12)), rng.normal(size=(12, 8))], {}),
            ("matmul", [rng.normal(size=(6, 20, 5)), rng.normal(size=(5, 7))], {}),
        ]

    def test_grads_identical_across_shard_and_thread_counts(
        self, rng, low_floor, force_parallel, monkeypatch
    ):
        from repro.autodiff.capture import _shared_executor

        for name, arrays, params in self._grad_cases(rng):
            probe_rng = np.random.default_rng(7)
            reference = None
            # decide_shards picks the shard count from (seconds, units,
            # workers); pinning it exercises explicit counts {1, 2, 5, units}.
            for shards in (1, 2, 5, None):
                if shards is not None:
                    monkeypatch.setattr(
                        sharding, "decide_shards", lambda s, u, w, _n=shards: min(_n, u)
                    )
                else:
                    monkeypatch.undo()
                    monkeypatch.setenv("REPRO_SHARD_MIN_FLOPS", "1")
                    monkeypatch.setenv("REPRO_REPLAY_FORCE_PARALLEL", "1")
                for workers in (1, 2, 8):
                    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
                    node = op_registry.apply(name, tensors, dict(params))
                    probe = np.random.default_rng(7).normal(size=node.shape)
                    if workers == 1:
                        node.backward(probe)
                    else:
                        runner = sharding.ShardRunner(_shared_executor(workers), workers)
                        with sharding.runner_scope(runner):
                            node.backward(probe)
                    digest = tuple(_sha(t.grad) for t in tensors)
                    if reference is None:
                        reference = digest
                    assert digest == reference, (
                        f"{name} shards={shards} workers={workers}"
                    )


@pytest.mark.parametrize(
    "h,w,kh,kw,stride,padding",
    [
        (11, 11, 3, 3, 1, 1),   # ragged: out_h=11 -> bands of 4, 4, 3
        (16, 16, 3, 3, 1, 0),
        (15, 15, 5, 5, 2, 2),   # stride>1 with a wide halo
        (9, 13, 3, 5, 2, 1),    # asymmetric kernel, ragged both ways
        (8, 8, 2, 2, 2, 0),     # pooling geometry
        (7, 7, 3, 3, 1, 3),     # padding wider than the band overlap
    ],
)
class TestSpatialWindowHalo:
    """Row-window unfolds carry their halo and tile back byte-identically."""

    def test_banded_unfold_matches_whole(self, rng, h, w, kh, kw, stride, padding):
        images = rng.normal(size=(1, 3, h, w))
        full, out_h, out_w = im2col(images, kh, kw, stride, padding)
        assembled = np.empty(full.shape, full.dtype)
        rows_per_band = sharding.SPATIAL_BAND_ROWS
        bands = -(-out_h // rows_per_band)
        for band in range(bands):
            r0 = band * rows_per_band
            r1 = min(r0 + rows_per_band, out_h)
            window = assembled[r0 * out_w : r1 * out_w]
            im2col_into(images, kh, kw, stride, padding, window, row_start=r0, row_stop=r1)
        assert assembled.tobytes() == full.tobytes()


class TestSpatialForwardShards:
    """Batch-1 forward_shard over output-row bands reproduces the whole op."""

    def _spatial_cases(self, rng):
        return [
            ("conv2d", [rng.normal(size=(1, 3, 11, 11)), rng.normal(size=(4, 3, 3, 3)),
                        rng.normal(size=(4,))], {"stride": 1, "padding": 1}),
            ("conv2d", [rng.normal(size=(1, 2, 15, 15)), rng.normal(size=(3, 2, 5, 5))],
             {"stride": 2, "padding": 2}),
            ("max_pool2d", [rng.normal(size=(1, 4, 18, 18))], {"kernel": 2, "stride": 2}),
            ("avg_pool2d", [rng.normal(size=(1, 4, 18, 18))], {"kernel": 2, "stride": 2}),
        ]

    def test_spatial_shards_match_whole_at_any_shard_count(self, rng, low_floor):
        for name, arrays, params in self._spatial_cases(rng):
            tensors = [Tensor(a, requires_grad=True) for a in arrays]
            node = op_registry.apply(name, tensors, dict(params))
            call = node._op_call
            op = call.op
            in_shapes = tuple(t.data.shape for t in call.tensors)
            units = op.shard_units(in_shapes, node.data.shape, call.params, node.data.itemsize)
            assert units >= 2, f"{name}: fixture too small for spatial bands"
            inputs = tuple(t.data for t in call.tensors)
            for shards in {1, 2, units}:
                out = np.empty_like(node.data)
                for start, stop in sharding.partition(units, shards):
                    op.forward_shard(inputs, call.params, call.saved, out, start, stop)
                assert out.tobytes() == node.data.tobytes(), f"{name} shards={shards}"

    def test_batch_of_two_still_bands_on_samples(self, rng, low_floor):
        """n >= 2 keeps the batch axis: units == n, not spatial bands."""
        arrays = [rng.normal(size=(2, 3, 16, 16)), rng.normal(size=(4, 3, 3, 3))]
        tensors = [Tensor(a) for a in arrays]
        node = op_registry.apply("conv2d", tensors, {"stride": 1, "padding": 1})
        op = node._op_call.op
        units = op.shard_units(
            tuple(a.shape for a in arrays), node.data.shape, {"stride": 1, "padding": 1}, 8
        )
        assert units == 2


class TestBatch1CapturedTower:
    @pytest.mark.parametrize("threads", ["1", "2", "8"])
    def test_batch1_replay_matches_eager_sha256(
        self, rng, low_floor, force_parallel, monkeypatch, threads
    ):
        monkeypatch.setenv("REPRO_REPLAY_THREADS", threads)
        dtype = get_default_dtype()
        weights = _tower_weights(rng, dtype)
        trace = _tower_trace(weights)
        eager, captured = EagerExecution(), CapturedExecution()
        for trial in range(3):
            batch = rng.normal(size=(1, 3, 16, 16)).astype(dtype)
            expected = eager.run(trace, batch)
            actual = captured.run(trace, batch, key="tower-b1")
            assert _sha(expected.objective.data) == _sha(actual.objective.data), (
                f"threads={threads} trial={trial}"
            )
            assert _sha(np.array(expected.input.grad)) == _sha(np.array(actual.input.grad)), (
                f"threads={threads} trial={trial}"
            )
        assert captured.stats.replays >= 1

    def test_batch1_replay_reports_spatial_profile_rows(
        self, rng, low_floor, force_parallel, monkeypatch
    ):
        from repro.autodiff.capture import _ShardedNode

        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        dtype = get_default_dtype()
        # 48x48 keeps the per-conv cost above the shard floor at batch 1, so
        # the replay actually fans the spatial bands out (16x16 stays whole).
        weights = _tower_weights(rng, dtype, head_features=8 * 12 * 12)
        trace = _tower_trace(weights)
        captured = CapturedExecution()
        batch = rng.normal(size=(1, 3, 48, 48)).astype(dtype)
        with profile_ops() as profiler:
            for _ in range(6):
                captured.run(trace, batch, key="tower-b1-prof")
        recording = next(iter(captured._recordings.values()))
        spatial_names = {
            step.profile_name
            for step in recording._plan.steps
            if isinstance(step, _ShardedNode)
        }
        assert "conv2d_spatial" in spatial_names
        stats = profiler.as_dict()
        assert stats["conv2d_spatial"]["calls"] >= 2
        assert stats["conv2d_spatial"]["meta"]["shards"] >= 2


class TestScratchPoolWarmReplay:
    def test_warm_reduce_replays_allocate_zero_new_slabs(
        self, rng, low_floor, force_parallel, monkeypatch
    ):
        """After one cold replay the scratch pool serves every later one."""
        monkeypatch.setenv("REPRO_REPLAY_THREADS", "4")
        dtype = get_default_dtype()
        weights = _tower_weights(rng, dtype)
        trace = _tower_trace(weights)
        captured = CapturedExecution()
        batch = rng.normal(size=(6, 3, 16, 16)).astype(dtype)
        pool = sharding.scratch_pool()
        pool.clear()
        # Eager warmup + recording pass + first replay warm the pool.
        for _ in range(3):
            captured.run(trace, batch, key="tower-warm")
        assert captured.stats.replays >= 1
        warm = pool.stats.allocations
        for _ in range(3):
            captured.run(trace, batch, key="tower-warm")
        assert pool.stats.allocations == warm, "warm replays must not allocate slabs"
        assert pool.stats.reuses > 0

    def test_buffer_pool_clear_drops_everything(self):
        pool = BufferPool()
        kept = pool.acquire((4, 4), np.float64)
        scratch = pool.take((2, 8), np.float32)
        pool.release(scratch)
        assert len(pool) == 2
        allocations = pool.stats.allocations
        assert pool.clear() == 2
        assert len(pool) == 0
        assert pool.stats.allocations == allocations  # cumulative, untouched
        # A cleared pool allocates fresh on the next request.
        fresh = pool.take((2, 8), np.float32)
        assert fresh is not scratch
        assert kept.shape == (4, 4)  # caller's reference stays valid
