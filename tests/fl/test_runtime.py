"""Tests of the federation runtime: envelopes, transports, attestation, hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PGD
from repro.fl import (
    AttestationGate,
    BroadcastEnvelope,
    ClientConfig,
    CompromisedClient,
    FederationRuntime,
    HonestClient,
    ModelPoisoningClient,
    RoundHooks,
    UpdateEnvelope,
    enroll_and_attest,
    get_transport,
    trimmed_mean,
    coordinate_median,
    fedavg,
    make_delta,
    apply_delta,
)
from repro.fl.messages import ModelUpdate
from repro.fl.runtime import decode_state, encode_state, seal_state, unseal_state
from repro.models.simple import MLPClassifier
from repro.tee.attestation import AttestationQuote
from repro.tee.enclave import TrustZoneEnclave
from repro.tee.errors import AttestationError, SecureChannelError
from repro.tee.secure_channel import SecureChannel
from repro.utils.rng import set_global_seed


def _mlp_factory():
    return MLPClassifier(input_dim=12, num_classes=3, hidden_dim=12, input_shape=(3, 2, 2))


def _toy_data(rng, samples_per_class: int = 30):
    prototypes = np.eye(3)
    images, labels = [], []
    for class_index in range(3):
        base = np.zeros((samples_per_class, 3, 2, 2))
        base += prototypes[class_index][None, :, None, None]
        base += rng.normal(scale=0.1, size=base.shape)
        images.append(np.clip(base, 0.0, 1.0))
        labels.append(np.full(samples_per_class, class_index, dtype=np.int64))
    images = np.concatenate(images)
    labels = np.concatenate(labels)
    order = rng.permutation(len(labels))
    return images[order], labels[order]


def _honest_clients(images, labels, count=3, enclaves=False, config=None):
    config = config if config is not None else ClientConfig(local_epochs=1, batch_size=16)
    return [
        HonestClient(
            f"c{i}",
            _mlp_factory,
            images[i::count],
            labels[i::count],
            config=config,
            enclave=TrustZoneEnclave(name=f"c{i}.enclave") if enclaves else None,
        )
        for i in range(count)
    ]


# --------------------------------------------------------------------------- #
# Envelopes
# --------------------------------------------------------------------------- #
class TestEnvelopes:
    def test_state_codec_roundtrip(self, rng):
        state = {"w": rng.normal(size=(3, 4)), "b": rng.normal(size=(4,))}
        decoded = decode_state(encode_state(state))
        assert set(decoded) == {"w", "b"}
        np.testing.assert_array_equal(decoded["w"], state["w"])

    def test_sealed_state_roundtrip_and_tamper_detection(self, rng):
        channel = SecureChannel(b"k" * 32, rng=rng)
        state = {"w": rng.normal(size=(2, 2))}
        sealed = seal_state(channel, state)
        np.testing.assert_array_equal(unseal_state(channel, sealed)["w"], state["w"])
        import dataclasses

        tampered = dataclasses.replace(
            sealed.message, ciphertext=bytes(value ^ 0xFF for value in sealed.message.ciphertext)
        )
        with pytest.raises(SecureChannelError):
            channel.decrypt(tampered)

    def test_envelope_requires_exactly_one_payload(self):
        with pytest.raises(ValueError):
            BroadcastEnvelope(round_index=0)
        with pytest.raises(ValueError):
            UpdateEnvelope(
                client_id="c",
                round_index=0,
                num_samples=1,
                train_loss=0.0,
                train_accuracy=0.0,
            )

    def test_sealed_broadcast_requires_channel(self, rng):
        channel = SecureChannel(b"k" * 32, rng=rng)
        envelope = BroadcastEnvelope(round_index=0, sealed=seal_state(channel, {"w": np.ones(2)}))
        with pytest.raises(SecureChannelError):
            envelope.open(None)

    def test_update_envelope_roundtrip(self):
        update = ModelUpdate(
            client_id="c0", round_index=1, num_samples=7, state={"w": np.ones(3)},
            train_loss=0.5, train_accuracy=0.9,
        )
        reopened = UpdateEnvelope.from_update(update).open()
        assert reopened.client_id == "c0"
        assert reopened.num_samples == 7
        np.testing.assert_array_equal(reopened.state["w"], update.state["w"])


# --------------------------------------------------------------------------- #
# Transport parity
# --------------------------------------------------------------------------- #
class TestTransportParity:
    def _history(self, backend: str):
        set_global_seed(4242)
        rng = np.random.default_rng(11)
        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(),
            _honest_clients(images, labels),
            transport=get_transport(backend, max_workers=2),
        )
        result = runtime.run(2, images, labels)
        return [
            (
                entry.round_index,
                tuple(entry.participating_clients),
                entry.global_accuracy,
                entry.mean_client_loss,
                entry.update_bytes,
                tuple(entry.compromised_clients),
            )
            for entry in result.rounds
        ]

    def test_round_histories_bit_identical_across_backends(self):
        serial = self._history("serial")
        assert self._history("thread") == serial
        assert self._history("process") == serial

    def test_unknown_transport_rejected(self):
        with pytest.raises(KeyError):
            get_transport("carrier-pigeon")

    def _streamed_aggregate(self, workers: int, aggregation_rule):
        """Global model bytes after a streamed round on ``workers`` threads."""
        set_global_seed(777)
        rng = np.random.default_rng(5)
        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(),
            _honest_clients(images, labels, count=5),
            transport=get_transport("thread", max_workers=workers),
            aggregation_rule=aggregation_rule,
        )
        result = runtime.run_round(images, labels)
        state = runtime.global_model.state_dict()
        return (
            {key: np.asarray(value).tobytes() for key, value in state.items()},
            result.update_bytes,
            result.global_accuracy,
        )

    @pytest.mark.parametrize("rule", [fedavg, coordinate_median, trimmed_mean])
    def test_streamed_aggregates_byte_identical_across_worker_counts(self, rule):
        """Streaming reduce is pinned: {1, 2, 8} workers give the same bytes."""
        reference = self._streamed_aggregate(1, rule)
        for workers in (2, 8):
            assert self._streamed_aggregate(workers, rule) == reference, (
                f"{rule.__name__} aggregate bytes changed at {workers} workers"
            )


# --------------------------------------------------------------------------- #
# Robust aggregation under attack
# --------------------------------------------------------------------------- #
class TestRobustAggregationUnderAttack:
    def _final_accuracy(self, rule, rng_seed=5):
        set_global_seed(777)
        rng = np.random.default_rng(rng_seed)
        images, labels = _toy_data(rng, samples_per_class=40)
        config = ClientConfig(local_epochs=2, batch_size=16, learning_rate=0.08)
        clients = _honest_clients(images, labels, count=4, config=config)
        # Replace the last participant with a boosted model-poisoning client.
        evil = ModelPoisoningClient(
            "evil",
            _mlp_factory,
            images[3::4],
            labels[3::4],
            attack=PGD(epsilon=0.1, step_size=0.05, steps=1),
            config=config,
            poison_target=0,
            poison_fraction=1.0,
            boost_factor=50.0,
        )
        clients[-1] = evil
        runtime = FederationRuntime(_mlp_factory(), clients, aggregation_rule=rule)
        result = runtime.run(3, images, labels)
        assert result.rounds[-1].compromised_clients == ["evil"]
        return result.final_accuracy

    def test_robust_rules_outvote_poisoned_updates_where_fedavg_fails(self):
        from functools import partial

        poisoned_fedavg = self._final_accuracy(fedavg)
        robust_trimmed = self._final_accuracy(partial(trimmed_mean, trim_fraction=0.25))
        robust_median = self._final_accuracy(coordinate_median)
        assert robust_trimmed > 0.8
        assert robust_median > 0.8
        assert poisoned_fedavg < 0.6
        assert robust_trimmed > poisoned_fedavg
        assert robust_median > poisoned_fedavg


# --------------------------------------------------------------------------- #
# Attestation-gated secure sessions
# --------------------------------------------------------------------------- #
class TestAttestedSessions:
    def _federation(self, rng, enclaves=True):
        images, labels = _toy_data(rng)
        clients = _honest_clients(images, labels, enclaves=enclaves)
        runtime = FederationRuntime(_mlp_factory(), clients)
        return runtime, clients, images, labels

    def test_shielded_updates_traverse_the_secure_channel(self, rng):
        set_global_seed(31337)
        runtime, clients, images, labels = self._federation(rng)
        device_keys = {client.client_id: b"device-" + client.client_id.encode() * 4
                       for client in clients}
        sessions = runtime.attest_clients(device_keys)
        assert set(sessions) == {"c0", "c1", "c2"}
        result = runtime.run_round(images, labels)
        # Broadcast + update sealed for every attested participant.
        assert runtime.secure_stats.attested_clients == 3
        assert runtime.secure_stats.sealed_messages == 2 * len(result.participating_clients)
        assert runtime.secure_stats.sealed_bytes > 0
        assert np.isfinite(result.global_accuracy)

    def test_sealed_rounds_match_plaintext_rounds(self, rng):
        """Encryption is transparent: sealed and plaintext histories agree."""
        set_global_seed(2024)
        sealed_runtime, clients, images, labels = self._federation(np.random.default_rng(3))
        sealed_runtime.attest_clients(
            {client.client_id: b"k" * 32 for client in clients}
        )
        sealed = sealed_runtime.run_round(images, labels)

        set_global_seed(2024)
        plain_runtime, _, images2, labels2 = self._federation(np.random.default_rng(3))
        plain = plain_runtime.run_round(images2, labels2)
        assert sealed.global_accuracy == plain.global_accuracy
        assert sealed.mean_client_loss == plain.mean_client_loss
        assert sealed.update_bytes == plain.update_bytes

    def test_tampered_quote_is_rejected(self, rng):
        gate = AttestationGate(rng=rng)
        enclave = TrustZoneEnclave(name="victim.enclave")
        device_key = b"d" * 32
        gate.enroll("victim", device_key, enclave.measurement())

        def tampered_attest(nonce: bytes) -> AttestationQuote:
            quote = enclave.attest(nonce, device_key)
            return AttestationQuote(
                enclave_name=quote.enclave_name,
                measurement=quote.measurement,
                nonce=quote.nonce,
                signature=bytes(value ^ 0x01 for value in quote.signature),
            )

        with pytest.raises(AttestationError):
            gate.establish("victim", tampered_attest)
        assert "victim" not in gate.sessions

    def test_wrong_measurement_is_rejected(self, rng):
        gate = AttestationGate(rng=rng)
        enclave = TrustZoneEnclave(name="victim.enclave")
        device_key = b"d" * 32
        gate.enroll("victim", device_key, b"\x00" * 32)  # expectation mismatch
        with pytest.raises(AttestationError):
            gate.establish("victim", lambda nonce: enclave.attest(nonce, device_key))

    def test_unenrolled_client_is_rejected(self, rng):
        gate = AttestationGate(rng=rng)
        client = HonestClient(
            "ghost", _mlp_factory, np.zeros((2, 3, 2, 2)), np.zeros(2, dtype=np.int64),
            enclave=TrustZoneEnclave(name="ghost.enclave"),
        )
        with pytest.raises(AttestationError):
            gate.establish("ghost", lambda nonce: client.enclave.attest(nonce, b"k" * 16))

    def test_shared_gate_sessions_do_not_leak_across_runtimes(self, rng):
        """A runtime only trusts sessions it established itself."""
        attested_runtime, clients, images, labels = self._federation(rng)
        attested_runtime.attest_clients({c.client_id: b"k" * 32 for c in clients})
        # Second federation, same client ids but no enclaves, sharing the gate.
        other_images, other_labels = _toy_data(np.random.default_rng(9))
        other_runtime = FederationRuntime(
            _mlp_factory(),
            _honest_clients(other_images, other_labels, enclaves=False),
            gate=attested_runtime.gate,
        )
        result = other_runtime.run_round(other_images, other_labels)
        assert other_runtime.secure_stats.attested_clients == 0
        assert other_runtime.secure_stats.sealed_messages == 0
        assert np.isfinite(result.global_accuracy)

    def test_missing_device_key_refuses_plaintext_downgrade(self, rng):
        runtime, clients, _, _ = self._federation(rng)
        partial_keys = {"c0": b"k" * 32, "c1": b"k" * 32}  # c2 missing
        with pytest.raises(AttestationError):
            runtime.attest_clients(partial_keys)

    def test_enclaveless_client_cannot_attest(self, rng):
        gate = AttestationGate(rng=rng)
        client = HonestClient(
            "bare", _mlp_factory, np.zeros((2, 3, 2, 2)), np.zeros(2, dtype=np.int64)
        )
        with pytest.raises(AttestationError):
            enroll_and_attest(gate, client, b"k" * 16)


# --------------------------------------------------------------------------- #
# Compromised detection and hooks
# --------------------------------------------------------------------------- #
class TestCompromisedDetection:
    def test_detection_survives_subclassing(self, rng):
        """Regression: the old type-name check missed subclasses."""

        class StealthyClient(CompromisedClient):
            pass

        images, labels = _toy_data(rng)
        stealthy = StealthyClient(
            "stealthy", _mlp_factory, images[:30], labels[:30],
            attack=PGD(epsilon=0.1, step_size=0.05, steps=1),
        )
        honest = HonestClient("honest", _mlp_factory, images[30:60], labels[30:60])
        runtime = FederationRuntime(_mlp_factory(), [honest, stealthy])
        result = runtime.run_round(images, labels)
        assert result.compromised_clients == ["stealthy"]

    def test_legacy_local_update_signature_still_runs(self, rng):
        """Pre-runtime participants without the rng keyword keep working."""

        class LegacyClient(HonestClient):
            def local_update(self, round_index):  # old, rng-less signature
                return super().local_update(round_index)

        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(), [LegacyClient("legacy", _mlp_factory, images[:30], labels[:30])]
        )
        result = runtime.run_round(images, labels)
        assert result.participating_clients == ["legacy"]
        assert np.isfinite(result.mean_client_loss)

    def test_honest_subclass_is_not_flagged(self, rng):
        class QuietClient(HonestClient):
            pass

        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(), [QuietClient("quiet", _mlp_factory, images[:30], labels[:30])]
        )
        assert runtime.run_round().compromised_clients == []


class TestRoundHooks:
    def test_hooks_compose_sampling_aggregation_and_eval(self, rng):
        images, labels = _toy_data(rng)
        clients = _honest_clients(images, labels)
        seen: list[int] = []
        hooks = RoundHooks(
            sample_clients=lambda population, _round, _rng: list(population)[:2],
            aggregate=coordinate_median,
            evaluate=lambda model, round_index: 0.123,
            on_round_end=(lambda result: seen.append(result.round_index),),
        )
        runtime = FederationRuntime(_mlp_factory(), clients, hooks=hooks)
        result = runtime.run(2)
        assert [entry.participating_clients for entry in result.rounds] == [["c0", "c1"]] * 2
        assert result.accuracies == [0.123, 0.123]
        assert seen == [0, 1]

    def test_default_fraction_sampling(self, rng):
        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(),
            _honest_clients(images, labels, count=4),
            client_fraction=0.5,
        )
        result = runtime.run_round()
        assert len(result.participating_clients) == 2
        with pytest.raises(ValueError):
            FederationRuntime(
                _mlp_factory(), _honest_clients(images, labels), client_fraction=0.0
            ).run_round()

    def test_all_nan_losses_stay_silent(self, rng):
        """A round whose every train_loss is NaN reports NaN, no warning."""
        import dataclasses
        import warnings

        class LossLessClient(HonestClient):
            def local_update(self, round_index, rng=None):
                update = super().local_update(round_index, rng=rng)
                return dataclasses.replace(update, train_loss=float("nan"))

        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(),
            [LossLessClient("mute", _mlp_factory, images[:30], labels[:30])],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = runtime.run_round()
        assert np.isnan(result.mean_client_loss)


# --------------------------------------------------------------------------- #
# Delta-compressed envelopes
# --------------------------------------------------------------------------- #
class TestDeltaCompression:
    def _states(self, rng):
        base = {"w": rng.normal(size=(3, 4)), "b": rng.normal(size=(4,))}
        new = {key: value + rng.normal(scale=0.01, size=value.shape) for key, value in base.items()}
        return base, new

    def test_float_delta_roundtrip_is_exact(self, rng):
        base, new = self._states(rng)
        delta = make_delta(new, base)
        assert not delta.is_quantized
        restored = apply_delta(base, delta)
        for key in base:
            np.testing.assert_array_equal(restored[key], (new[key] - base[key]) + base[key])

    def test_quantized_delta_error_bounded_by_scale(self, rng):
        base, new = self._states(rng)
        delta = make_delta(new, base, quantize_rng=np.random.default_rng(42))
        assert delta.is_quantized
        assert all(codes.dtype == np.int8 for codes in delta.codes.values())
        restored = apply_delta(base, delta)
        for key in base:
            scale = delta.scales[key]
            assert np.max(np.abs(restored[key] - new[key])) <= scale + 1e-12

    def test_quantized_delta_is_deterministic_in_the_seed(self, rng):
        base, new = self._states(rng)
        one = make_delta(new, base, quantize_rng=np.random.default_rng(9))
        two = make_delta(new, base, quantize_rng=np.random.default_rng(9))
        for key in one.codes:
            np.testing.assert_array_equal(one.codes[key], two.codes[key])

    def test_quantized_bytes_beat_dense(self, rng):
        base, new = self._states(rng)
        dense_bytes = sum(np.asarray(value).nbytes for value in new.values())
        delta = make_delta(new, base, quantize_rng=np.random.default_rng(1))
        assert delta.nbytes * 3 <= dense_bytes

    def test_delta_envelope_roundtrip_and_wire_bytes(self, rng):
        base, new = self._states(rng)
        update = ModelUpdate(
            client_id="c0", round_index=2, num_samples=5, state=new,
            train_loss=0.1, train_accuracy=0.8,
        )
        delta = make_delta(new, base)
        envelope = UpdateEnvelope.from_update(update, delta=delta)
        assert envelope.wire_nbytes == delta.nbytes
        reopened = envelope.open(base=base)
        assert reopened.payload_nbytes == delta.nbytes
        for key in base:
            np.testing.assert_array_equal(reopened.state[key], apply_delta(base, delta)[key])

    def test_delta_envelope_requires_base(self, rng):
        base, new = self._states(rng)
        update = ModelUpdate(client_id="c0", round_index=0, num_samples=5, state=new)
        envelope = UpdateEnvelope.from_update(update, delta=make_delta(new, base))
        with pytest.raises(ValueError):
            envelope.open()

    def test_apply_delta_rejects_mismatched_keys(self, rng):
        base, new = self._states(rng)
        delta = make_delta(new, base)
        with pytest.raises(ValueError):
            apply_delta({"w": base["w"]}, delta)

    def test_unknown_compression_rejected(self, rng):
        images, labels = _toy_data(rng)
        with pytest.raises(ValueError):
            FederationRuntime(
                _mlp_factory(),
                _honest_clients(images, labels),
                compression="gzip",
            )

    def _round_with(self, compression, rng_seed=21):
        set_global_seed(808)
        rng = np.random.default_rng(rng_seed)
        images, labels = _toy_data(rng)
        runtime = FederationRuntime(
            _mlp_factory(),
            _honest_clients(images, labels),
            compression=compression,
        )
        result = runtime.run_round(images, labels)
        return runtime, result

    def test_quantized_round_cuts_bytes_on_wire(self):
        _, dense = self._round_with("none")
        runtime, quant = self._round_with("delta-int8")
        assert quant.update_bytes * 3 <= dense.update_bytes
        stats = runtime.secure_stats
        assert stats.update_payload_bytes == quant.update_bytes
        assert stats.update_dense_bytes >= 3 * stats.update_payload_bytes
        # Accuracy stays in the same regime despite int8 update coding.
        assert abs(quant.global_accuracy - dense.global_accuracy) <= 0.2

    def test_float_delta_round_matches_dense_sizes(self):
        """Un-quantized deltas reshape the payload, not its size."""
        _, dense = self._round_with("none")
        _, delta = self._round_with("delta")
        assert delta.update_bytes == dense.update_bytes
        assert np.isfinite(delta.global_accuracy)
