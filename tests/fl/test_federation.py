"""Tests for the FL server, clients (honest and compromised) and orchestration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PGD
from repro.fl import (
    ClientConfig,
    CompromisedClient,
    FLServer,
    FederatedRunConfig,
    FederatedTrainer,
    GlobalModelBroadcast,
    HonestClient,
    add_backdoor_trigger,
    build_federation,
    fedavg,
    flip_labels,
    poison_with_backdoor,
)
from repro.models.simple import MLPClassifier


def _mlp_factory():
    return MLPClassifier(input_dim=12, num_classes=3, hidden_dim=12, input_shape=(3, 2, 2))


def _toy_federated_data(rng, samples_per_class: int = 30):
    """A linearly separable 3-class problem on 3x2x2 'images'."""
    prototypes = np.array([
        [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0],
    ])
    images, labels = [], []
    for class_index in range(3):
        base = np.zeros((samples_per_class, 3, 2, 2))
        base += prototypes[class_index][None, :, None, None]
        base += rng.normal(scale=0.1, size=base.shape)
        images.append(np.clip(base, 0.0, 1.0))
        labels.append(np.full(samples_per_class, class_index, dtype=np.int64))
    images = np.concatenate(images)
    labels = np.concatenate(labels)
    order = rng.permutation(len(labels))
    return images[order], labels[order]


class TestHonestClient:
    def test_receive_installs_global_state(self, rng):
        images, labels = _toy_federated_data(rng)
        client = HonestClient("c0", _mlp_factory, images[:30], labels[:30])
        reference = _mlp_factory()
        client.receive(GlobalModelBroadcast(round_index=0, state=reference.state_dict()))
        for (_, a), (_, b) in zip(client.model.named_parameters(), reference.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_local_update_reports_sample_count_and_trains(self, rng):
        images, labels = _toy_federated_data(rng)
        client = HonestClient(
            "c0", _mlp_factory, images[:60], labels[:60],
            config=ClientConfig(local_epochs=2, batch_size=16, learning_rate=0.05),
        )
        update = client.local_update(round_index=3)
        assert update.client_id == "c0"
        assert update.round_index == 3
        assert update.num_samples == 60
        assert set(update.state) == set(_mlp_factory().state_dict())
        assert np.isfinite(update.train_loss)


class TestServerAndTrainer:
    def test_round_improves_global_accuracy(self, rng):
        images, labels = _toy_federated_data(rng, samples_per_class=40)
        server, clients = build_federation(
            _mlp_factory, images, labels, num_clients=3,
            client_config=ClientConfig(local_epochs=2, batch_size=16, learning_rate=0.05),
        )
        before = server.global_model.accuracy(images, labels)
        trainer = FederatedTrainer(server, clients, FederatedRunConfig(num_rounds=3))
        result = trainer.run(eval_images=images, eval_labels=labels)
        assert len(result.rounds) == 3
        assert result.final_accuracy > before
        assert result.final_accuracy > 0.8

    def test_client_sampling_fraction(self, rng):
        images, labels = _toy_federated_data(rng)
        server, clients = build_federation(_mlp_factory, images, labels, num_clients=4)
        sampled = server.sample_clients(clients, fraction=0.5)
        assert len(sampled) == 2
        with pytest.raises(ValueError):
            server.sample_clients(clients, fraction=0.0)

    def test_aggregate_installs_fedavg_of_updates(self, rng):
        images, labels = _toy_federated_data(rng)
        server, clients = build_federation(_mlp_factory, images, labels, num_clients=2)
        broadcast = server.broadcast()
        updates = []
        for client in clients:
            client.receive(broadcast.copy())
            updates.append(client.local_update(0))
        server.aggregate(updates)
        expected = fedavg(updates)
        for name, parameter in server.global_model.named_parameters():
            np.testing.assert_allclose(parameter.data, expected[name])

    def test_subclass_aggregate_and_broadcast_overrides_are_honoured(self, rng):
        """run_round must keep routing through the overridable server methods."""
        calls = {"broadcast": 0, "aggregate": 0}

        class SpyServer(FLServer):
            def broadcast(self):
                calls["broadcast"] += 1
                return super().broadcast()

            def aggregate(self, updates):
                calls["aggregate"] += 1
                return super().aggregate(updates)

        images, labels = _toy_federated_data(rng)
        server = SpyServer(_mlp_factory())
        clients = [HonestClient("c0", _mlp_factory, images[:30], labels[:30])]
        server.run_round(clients)
        assert calls == {"broadcast": 1, "aggregate": 1}

    def test_round_result_records_compromised_clients(self, rng):
        images, labels = _toy_federated_data(rng)
        honest = HonestClient("h", _mlp_factory, images[:30], labels[:30])
        compromised = CompromisedClient(
            "evil", _mlp_factory, images[30:60], labels[30:60],
            attack=PGD(epsilon=0.1, step_size=0.02, steps=2),
        )
        server = FLServer(_mlp_factory())
        result = server.run_round([honest, compromised], eval_images=images, eval_labels=labels)
        assert result.compromised_clients == ["evil"]
        assert result.update_bytes > 0
        assert server.round_index == 1


class TestCompromisedClient:
    def test_probe_in_full_whitebox_beats_shielded_probe(self, rng):
        images, labels = _toy_federated_data(rng, samples_per_class=40)
        config = ClientConfig(local_epochs=3, batch_size=16, learning_rate=0.08)
        attack = PGD(epsilon=0.15, step_size=0.03, steps=8)

        clear_client = CompromisedClient(
            "clear", _mlp_factory, images, labels, attack=attack, config=config, shield_model=False
        )
        shielded_client = CompromisedClient(
            "shielded", _mlp_factory, images, labels, attack=attack, config=config, shield_model=True
        )
        # Both clients first train their local copy so the attack has a real target.
        clear_client.local_update(0)
        shielded_client.model.load_state_dict(clear_client.model.state_dict())

        clear_result = clear_client.probe_for_adversarial_examples(max_samples=24)
        shielded_result = shielded_client.probe_for_adversarial_examples(max_samples=24)
        assert clear_result.success_rate >= shielded_result.success_rate

    def test_poisoning_relabels_part_of_the_local_dataset(self, rng):
        images, labels = _toy_federated_data(rng)
        client = CompromisedClient(
            "evil", _mlp_factory, images[:40], labels[:40],
            attack=PGD(epsilon=0.1, step_size=0.05, steps=1),
            poison_target=0, poison_fraction=0.5,
            config=ClientConfig(local_epochs=1, batch_size=16),
        )
        original_labels = client.labels.copy()
        client.local_update(0)
        assert (client.labels == 0).sum() >= (original_labels == 0).sum()


class TestPoisoningHelpers:
    def test_flip_labels_fraction(self):
        labels = np.zeros(10, dtype=np.int64)
        flipped = flip_labels(labels, num_classes=5, fraction=0.5)
        assert (flipped != 0).sum() == 5

    def test_flip_labels_validates_fraction(self):
        with pytest.raises(ValueError):
            flip_labels(np.zeros(4, dtype=np.int64), 2, fraction=1.5)

    def test_backdoor_trigger_is_stamped(self, rng):
        images = rng.uniform(size=(3, 3, 8, 8)) * 0.2
        stamped = add_backdoor_trigger(images, trigger_size=2)
        np.testing.assert_allclose(stamped[:, :, -2:, -2:], 1.0)

    def test_backdoor_trigger_corners(self, rng):
        images = np.zeros((1, 1, 4, 4))
        assert add_backdoor_trigger(images, trigger_size=1, corner="top_left")[0, 0, 0, 0] == 1.0
        with pytest.raises(ValueError):
            add_backdoor_trigger(images, corner="middle")

    def test_poison_with_backdoor_relabels(self, rng):
        images = rng.uniform(size=(10, 3, 8, 8))
        labels = np.arange(10) % 3 + 1
        poisoned_images, poisoned_labels = poison_with_backdoor(
            images, labels, target_class=0, fraction=0.4
        )
        assert (poisoned_labels == 0).sum() == 4
        assert poisoned_images.shape == images.shape
