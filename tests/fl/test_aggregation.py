"""Tests for the FL aggregation rules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fl import ModelUpdate, coordinate_median, fedavg, get_aggregation_rule, trimmed_mean


def _update(client_id: str, value: float, num_samples: int = 10) -> ModelUpdate:
    return ModelUpdate(
        client_id=client_id,
        round_index=0,
        num_samples=num_samples,
        state={"w": np.full((2, 2), value), "b": np.full(2, value)},
    )


class TestFedAvg:
    def test_equal_weights_give_plain_mean(self):
        aggregated = fedavg([_update("a", 1.0), _update("b", 3.0)])
        np.testing.assert_allclose(aggregated["w"], 2.0)
        np.testing.assert_allclose(aggregated["b"], 2.0)

    def test_sample_count_weighting(self):
        aggregated = fedavg([_update("a", 0.0, num_samples=30), _update("b", 4.0, num_samples=10)])
        np.testing.assert_allclose(aggregated["w"], 1.0)

    def test_single_update_is_identity(self):
        update = _update("a", 5.0)
        aggregated = fedavg([update])
        np.testing.assert_allclose(aggregated["w"], update.state["w"])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_zero_total_samples_rejected(self):
        with pytest.raises(ValueError):
            fedavg([_update("a", 1.0, num_samples=0)])

    def test_mismatching_keys_rejected(self):
        good = _update("a", 1.0)
        bad = ModelUpdate(client_id="b", round_index=0, num_samples=5, state={"other": np.ones(2)})
        with pytest.raises(ValueError):
            fedavg([good, bad])

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(dtype=np.float64, shape=(3,), elements=st.floats(-5, 5)),
        arrays(dtype=np.float64, shape=(3,), elements=st.floats(-5, 5)),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
    )
    def test_property_weighted_mean_between_extremes(self, a, b, na, nb):
        """FedAvg output must lie coordinate-wise between the two client values."""
        updates = [
            ModelUpdate(client_id="a", round_index=0, num_samples=na, state={"w": a}),
            ModelUpdate(client_id="b", round_index=0, num_samples=nb, state={"w": b}),
        ]
        aggregated = fedavg(updates)["w"]
        lower = np.minimum(a, b) - 1e-9
        upper = np.maximum(a, b) + 1e-9
        assert np.all(aggregated >= lower) and np.all(aggregated <= upper)


class TestRobustRules:
    def test_median_ignores_a_single_outlier(self):
        updates = [_update("a", 1.0), _update("b", 1.2), _update("evil", 100.0)]
        aggregated = coordinate_median(updates)
        assert aggregated["w"].max() <= 1.2

    def test_trimmed_mean_discards_extremes(self):
        updates = [
            _update("a", 1.0),
            _update("b", 1.0),
            _update("c", 1.0),
            _update("d", 1.0),
            _update("evil", 1000.0),
        ]
        aggregated = trimmed_mean(updates, trim_fraction=0.2)
        assert aggregated["w"].max() < 10.0

    def test_trimmed_mean_validates_fraction(self):
        with pytest.raises(ValueError):
            trimmed_mean([_update("a", 1.0)], trim_fraction=0.6)

    def test_rule_lookup(self):
        assert get_aggregation_rule("fedavg") is fedavg
        assert get_aggregation_rule("median") is coordinate_median
        with pytest.raises(KeyError):
            get_aggregation_rule("krum")

    def test_update_nbytes(self):
        update = _update("a", 1.0)
        assert update.nbytes == update.state["w"].nbytes + update.state["b"].nbytes
