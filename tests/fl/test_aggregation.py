"""Tests for the FL aggregation rules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fl import (
    CLIENT_GROUP_SIZE,
    ModelUpdate,
    build_plan,
    coordinate_median,
    fedavg,
    get_aggregation_rule,
    streaming_aggregator_for,
    trimmed_mean,
)


def _update(client_id: str, value: float, num_samples: int = 10) -> ModelUpdate:
    return ModelUpdate(
        client_id=client_id,
        round_index=0,
        num_samples=num_samples,
        state={"w": np.full((2, 2), value), "b": np.full(2, value)},
    )


class TestFedAvg:
    def test_equal_weights_give_plain_mean(self):
        aggregated = fedavg([_update("a", 1.0), _update("b", 3.0)])
        np.testing.assert_allclose(aggregated["w"], 2.0)
        np.testing.assert_allclose(aggregated["b"], 2.0)

    def test_sample_count_weighting(self):
        aggregated = fedavg([_update("a", 0.0, num_samples=30), _update("b", 4.0, num_samples=10)])
        np.testing.assert_allclose(aggregated["w"], 1.0)

    def test_single_update_is_identity(self):
        update = _update("a", 5.0)
        aggregated = fedavg([update])
        np.testing.assert_allclose(aggregated["w"], update.state["w"])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_zero_total_samples_rejected(self):
        with pytest.raises(ValueError):
            fedavg([_update("a", 1.0, num_samples=0)])

    def test_mismatching_keys_rejected(self):
        good = _update("a", 1.0)
        bad = ModelUpdate(client_id="b", round_index=0, num_samples=5, state={"other": np.ones(2)})
        with pytest.raises(ValueError):
            fedavg([good, bad])

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(dtype=np.float64, shape=(3,), elements=st.floats(-5, 5)),
        arrays(dtype=np.float64, shape=(3,), elements=st.floats(-5, 5)),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
    )
    def test_property_weighted_mean_between_extremes(self, a, b, na, nb):
        """FedAvg output must lie coordinate-wise between the two client values."""
        updates = [
            ModelUpdate(client_id="a", round_index=0, num_samples=na, state={"w": a}),
            ModelUpdate(client_id="b", round_index=0, num_samples=nb, state={"w": b}),
        ]
        aggregated = fedavg(updates)["w"]
        lower = np.minimum(a, b) - 1e-9
        upper = np.maximum(a, b) + 1e-9
        assert np.all(aggregated >= lower) and np.all(aggregated <= upper)


class TestRobustRules:
    def test_median_ignores_a_single_outlier(self):
        updates = [_update("a", 1.0), _update("b", 1.2), _update("evil", 100.0)]
        aggregated = coordinate_median(updates)
        assert aggregated["w"].max() <= 1.2

    def test_trimmed_mean_discards_extremes(self):
        updates = [
            _update("a", 1.0),
            _update("b", 1.0),
            _update("c", 1.0),
            _update("d", 1.0),
            _update("evil", 1000.0),
        ]
        aggregated = trimmed_mean(updates, trim_fraction=0.2)
        assert aggregated["w"].max() < 10.0

    def test_trimmed_mean_validates_fraction(self):
        with pytest.raises(ValueError):
            trimmed_mean([_update("a", 1.0)], trim_fraction=0.6)

    def test_rule_lookup(self):
        assert get_aggregation_rule("fedavg") is fedavg
        assert get_aggregation_rule("median") is coordinate_median
        with pytest.raises(KeyError):
            get_aggregation_rule("krum")

    def test_update_nbytes(self):
        update = _update("a", 1.0)
        assert update.nbytes == update.state["w"].nbytes + update.state["b"].nbytes


# --------------------------------------------------------------------------- #
# Packed-vs-per-key parity, streaming byte-identity, dtype preservation
# --------------------------------------------------------------------------- #
def _random_updates(count: int, dtype=np.float64, seed: int = 13) -> list[ModelUpdate]:
    rng = np.random.default_rng(seed)
    return [
        ModelUpdate(
            client_id=f"c{index}",
            round_index=0,
            num_samples=5 + (index % 7),
            state={
                "conv.weight": rng.normal(size=(3, 2, 2)).astype(dtype),
                "conv.bias": rng.normal(size=(3,)).astype(dtype),
                "fc.weight": rng.normal(size=(4, 6)).astype(dtype),
            },
        )
        for index in range(count)
    ]


def _per_key_fedavg(updates):
    total = sum(update.num_samples for update in updates)
    return {
        key: sum(
            (update.num_samples / total) * np.asarray(update.state[key])
            for update in updates
        )
        for key in updates[0].state
    }


def _per_key_median(updates):
    return {
        key: np.median(np.stack([update.state[key] for update in updates]), axis=0)
        for key in updates[0].state
    }


def _per_key_trimmed_mean(updates, trim_fraction=0.2):
    trim = int(np.floor(trim_fraction * len(updates)))
    out = {}
    for key in updates[0].state:
        stacked = np.sort(np.stack([update.state[key] for update in updates]), axis=0)
        kept = stacked[trim : len(updates) - trim] if len(updates) - 2 * trim > 0 else stacked
        out[key] = kept.mean(axis=0)
    return out


class TestPackedParity:
    """The packed rules agree with naive per-key references.

    The packed iteration order (broadcast ``state_dict`` order) is the
    canonical aggregation order; per-key results agree to float round-off
    while the packed bytes are the pinned ones.
    """

    def test_fedavg_matches_per_key_loop(self):
        updates = _random_updates(37)
        packed = fedavg(updates)
        reference = _per_key_fedavg(updates)
        for key, value in reference.items():
            np.testing.assert_allclose(packed[key], value, rtol=1e-12, atol=1e-12)

    def test_median_matches_per_key_loop(self):
        updates = _random_updates(9)
        packed = coordinate_median(updates)
        reference = _per_key_median(updates)
        for key, value in reference.items():
            np.testing.assert_array_equal(packed[key], value)

    def test_trimmed_mean_matches_per_key_loop(self):
        updates = _random_updates(11)
        packed = trimmed_mean(updates, trim_fraction=0.2)
        reference = _per_key_trimmed_mean(updates, trim_fraction=0.2)
        for key, value in reference.items():
            np.testing.assert_allclose(packed[key], value, rtol=1e-12, atol=1e-12)


class TestStreamingByteIdentity:
    def _streamed(self, rule, updates, **kwargs):
        plan = build_plan(updates[0].state)
        streamer = streaming_aggregator_for(rule, plan, len(updates))
        assert streamer is not None
        for update in updates:
            streamer.add(update)
        return streamer.finalize()

    @pytest.mark.parametrize("rule", [fedavg, coordinate_median, trimmed_mean])
    def test_streamed_bytes_equal_batch_bytes(self, rule):
        # Spans multiple fedavg client groups, including a partial tail.
        updates = _random_updates(CLIENT_GROUP_SIZE * 2 + 5)
        batch = rule(updates)
        streamed = self._streamed(rule, updates)
        assert set(batch) == set(streamed)
        for key in batch:
            assert batch[key].tobytes() == streamed[key].tobytes()

    def test_robust_rules_invariant_to_chunk_size(self):
        updates = _random_updates(7)
        for rule in (coordinate_median, trimmed_mean):
            reference = {key: value.tobytes() for key, value in rule(updates).items()}
            for chunk in (1, 3, 5, 64, 10**6):
                chunked = rule(updates, chunk_elements=chunk)
                assert {k: v.tobytes() for k, v in chunked.items()} == reference, (
                    f"{rule.__name__} bytes changed at chunk={chunk}"
                )

    def test_streamed_counts_are_enforced(self):
        updates = _random_updates(4)
        plan = build_plan(updates[0].state)
        streamer = streaming_aggregator_for(fedavg, plan, 3)
        for update in updates[:3]:
            streamer.add(update)
        with pytest.raises(ValueError):
            streamer.add(updates[3])
        short = streaming_aggregator_for(fedavg, plan, 3)
        short.add(updates[0])
        with pytest.raises(ValueError):
            short.finalize()

    def test_unknown_rule_has_no_streamer(self):
        updates = _random_updates(2)
        plan = build_plan(updates[0].state)
        assert streaming_aggregator_for(lambda ups: {}, plan, 2) is None


class TestDtypePreservation:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("rule", [fedavg, coordinate_median, trimmed_mean])
    def test_aggregate_keeps_update_dtype(self, rule, dtype):
        updates = _random_updates(6, dtype=dtype)
        aggregated = rule(updates)
        for key, value in aggregated.items():
            assert value.dtype == np.dtype(dtype), (key, value.dtype)
            assert value.shape == updates[0].state[key].shape


class TestValidationErrors:
    def test_shape_mismatch_names_client_and_key(self):
        updates = _random_updates(3)
        bad_state = dict(updates[1].state)
        bad_state["fc.weight"] = bad_state["fc.weight"].T.copy()
        updates[1] = ModelUpdate(
            client_id="c1", round_index=0, num_samples=5, state=bad_state
        )
        for rule in (fedavg, coordinate_median, trimmed_mean):
            with pytest.raises(ValueError, match=r"c1.*fc\.weight"):
                rule(updates)

    def test_dtype_mismatch_names_client_and_key(self):
        updates = _random_updates(3)
        bad_state = dict(updates[2].state)
        bad_state["conv.bias"] = bad_state["conv.bias"].astype(np.float32)
        updates[2] = ModelUpdate(
            client_id="c2", round_index=0, num_samples=5, state=bad_state
        )
        for rule in (fedavg, coordinate_median, trimmed_mean):
            with pytest.raises(ValueError, match=r"c2.*conv\.bias"):
                rule(updates)
