"""Tests of flat state packing: plans, validation, chunk gathers, roundtrips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import (
    build_plan,
    pack,
    pack_into,
    pack_slice_into,
    unpack,
)


def _state(rng=None, dtype=np.float64):
    rng = rng if rng is not None else np.random.default_rng(7)
    return {
        "conv.weight": rng.normal(size=(4, 2, 3, 3)).astype(dtype),
        "conv.bias": rng.normal(size=(4,)).astype(dtype),
        "fc.weight": rng.normal(size=(5, 16)).astype(dtype),
        "fc.bias": rng.normal(size=(5,)).astype(dtype),
    }


class TestPlan:
    def test_canonical_order_is_state_iteration_order(self):
        state = _state()
        plan = build_plan(state)
        assert plan.keys == tuple(state.keys())
        offsets = [field.start for field in plan.fields]
        assert offsets == sorted(offsets)
        assert plan.fields[0].start == 0
        assert plan.size == sum(np.asarray(v).size for v in state.values())
        assert plan.nbytes == plan.size * plan.dtype.itemsize

    def test_empty_state_rejected(self):
        with pytest.raises(ValueError):
            build_plan({})

    def test_plan_dtype_promotes_mixed_fields(self):
        plan = build_plan({"a": np.ones(2, dtype=np.float32), "b": np.ones(2)})
        assert plan.dtype == np.float64
        assert not plan.homogeneous

    def test_homogeneous_plan_flag(self):
        assert build_plan(_state()).homogeneous


class TestPackRoundtrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_pack_unpack_roundtrip_preserves_shape_and_dtype(self, dtype):
        state = _state(dtype=dtype)
        plan = build_plan(state)
        vector = pack(plan, state)
        assert vector.dtype == np.dtype(dtype)
        restored = unpack(plan, vector)
        assert set(restored) == set(state)
        for key, value in state.items():
            assert restored[key].shape == value.shape
            assert restored[key].dtype == value.dtype
            np.testing.assert_array_equal(restored[key], value)

    def test_pack_into_matches_manual_concatenation(self):
        state = _state()
        plan = build_plan(state)
        out = np.empty(plan.size)
        pack_into(plan, state, out)
        expected = np.concatenate([state[key].reshape(-1) for key in plan.keys])
        np.testing.assert_array_equal(out, expected)

    def test_pack_accepts_non_ndarray_values(self):
        plan = build_plan({"w": np.zeros(3)})
        packed = pack(plan, {"w": [1.0, 2.0, 3.0]})
        np.testing.assert_array_equal(packed, [1.0, 2.0, 3.0])

    def test_pack_heterogeneous_plan_promotes(self):
        state = {"a": np.ones(2, dtype=np.float32), "b": np.full(2, 2.0)}
        plan = build_plan(state)
        packed = pack(plan, state)
        assert packed.dtype == np.float64
        np.testing.assert_array_equal(packed, [1.0, 1.0, 2.0, 2.0])


class TestValidation:
    def test_missing_key_names_owner_and_key(self):
        state = _state()
        plan = build_plan(state)
        broken = dict(state)
        del broken["fc.bias"]
        with pytest.raises(ValueError, match=r"client 'c9'.*fc\.bias"):
            pack_into(plan, broken, np.empty(plan.size), owner="client 'c9'")

    def test_extra_key_rejected(self):
        state = _state()
        plan = build_plan(state)
        extra = dict(state, rogue=np.zeros(1))
        with pytest.raises(ValueError, match="rogue"):
            pack(plan, extra)

    def test_shape_mismatch_names_key(self):
        state = _state()
        plan = build_plan(state)
        bad = dict(state, **{"fc.weight": state["fc.weight"].T.copy()})
        with pytest.raises(ValueError, match=r"fc\.weight.*shape"):
            pack_into(plan, bad, np.empty(plan.size), owner="client 'evil'")

    def test_dtype_mismatch_names_key(self):
        state = _state()
        plan = build_plan(state)
        bad = dict(state, **{"conv.bias": state["conv.bias"].astype(np.float32)})
        with pytest.raises(ValueError, match=r"conv\.bias.*dtype"):
            pack(plan, bad)

    def test_validate_passes_clean_state(self):
        state = _state()
        plan = build_plan(state)
        plan.validate(state)  # must not raise


class TestSliceGather:
    def test_chunks_reassemble_to_full_pack(self):
        state = _state()
        plan = build_plan(state)
        full = pack(plan, state)
        for chunk in (1, 3, 17, plan.size):
            gathered = np.empty(plan.size)
            for start in range(0, plan.size, chunk):
                stop = min(plan.size, start + chunk)
                pack_slice_into(plan, state, start, stop, gathered[start:stop])
            np.testing.assert_array_equal(gathered, full)

    def test_slice_only_touches_overlapping_fields(self):
        state = _state()
        plan = build_plan(state)
        field = plan.fields[2]
        window = np.empty(field.size)
        pack_slice_into(plan, state, field.start, field.stop, window)
        np.testing.assert_array_equal(window, state[field.key].reshape(-1))
