"""Tests for the evaluation metrics, table formatting and geometry study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    EnsembleBenchmarkResult,
    IndividualModelResult,
    attack_success_rate,
    evaluate_attack,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    robust_accuracy,
    select_correctly_classified,
)
from repro.eval.geometry import make_toy_problem, run_geometry_study, train_toy_classifier


class _FixedPredictor:
    """Predictor returning precomputed answers, for metric tests."""

    def __init__(self, answers: np.ndarray):
        self.answers = np.asarray(answers)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        return self.answers[: len(batch)]


class TestMetrics:
    def test_select_correctly_classified_filters_and_caps(self, rng):
        images = rng.uniform(size=(10, 1, 2, 2))
        labels = np.arange(10) % 2
        predictor = lambda batch: np.zeros(len(batch), dtype=np.int64)  # predicts class 0
        selected_images, selected_labels = select_correctly_classified(predictor, images, labels, 3)
        assert np.all(selected_labels == 0)
        assert len(selected_labels) <= 3

    def test_select_correctly_classified_empty_result(self, rng):
        images = rng.uniform(size=(4, 1, 2, 2))
        labels = np.ones(4, dtype=np.int64)
        predictor = lambda batch: np.zeros(len(batch), dtype=np.int64)
        selected_images, selected_labels = select_correctly_classified(predictor, images, labels, 4)
        assert len(selected_labels) == 0

    def test_robust_accuracy_and_success_rate(self, rng):
        adversarials = rng.uniform(size=(4, 1, 2, 2))
        labels = np.array([0, 0, 1, 1])
        predictor = _FixedPredictor(np.array([0, 1, 1, 0]))
        accuracy = robust_accuracy(predictor, adversarials, labels)
        assert accuracy == pytest.approx(0.5)
        assert attack_success_rate(predictor, adversarials, labels) == pytest.approx(0.5)

    def test_robust_accuracy_empty_set_is_nan(self):
        assert np.isnan(robust_accuracy(lambda b: np.zeros(0), np.zeros((0, 1)), np.zeros(0)))

    def test_evaluate_attack_records_norms(self, rng):
        originals = rng.uniform(size=(3, 1, 2, 2))
        adversarials = np.clip(originals + 0.1, 0.0, 1.0)
        labels = np.array([0, 1, 0])
        predictor = _FixedPredictor(labels.copy())
        result = evaluate_attack(predictor, "demo", originals, adversarials, labels)
        assert result.robust_accuracy == 1.0
        assert result.attack_success_rate == 0.0
        assert result.mean_linf <= 0.1 + 1e-9
        assert result.num_samples == 3


class TestTableFormatting:
    def test_table1_contains_all_models_and_paper_values(self):
        text = format_table1()
        for name in ("ViT-L/16", "ViT-B/16", "BiT-M-R101x3", "BiT-M-R152x4"):
            assert name in text
        assert "MB" in text and "KB" in text

    def test_table2_lists_all_attacks_and_datasets(self):
        text = format_table2()
        for token in ("cifar10", "cifar100", "imagenet", "FGSM", "PGD", "MIM", "APGD", "C&W", "SAGA"):
            assert token in text
        assert "0.031" in text and "0.062" in text

    def test_table3_formatting(self):
        result = IndividualModelResult(
            model_name="vit_b16",
            dataset="cifar10",
            clean_accuracy=0.97,
            robust={"fgsm": {"unshielded": 0.1, "shielded": 0.9}},
            eval_samples=32,
        )
        text = format_table3([result])
        assert "vit_b16" in text
        assert "FGSM" in text
        assert "10.0%" in text and "90.0%" in text and "97.0%" in text

    def test_table3_empty(self):
        assert "no results" in format_table3([])

    def test_table4_formatting(self):
        result = EnsembleBenchmarkResult(
            dataset="cifar10",
            vit_name="vit_l16",
            cnn_name="bit_m_r101x3",
            clean_accuracy={"vit": 0.99, "cnn": 0.98, "ensemble": 0.99},
            random_astuteness={"vit": 0.99, "cnn": 0.97, "ensemble": 0.98},
            robust={
                "none": {"vit": 0.2, "cnn": 0.3, "ensemble": 0.25},
                "vit_only": {"vit": 0.9, "cnn": 0.1, "ensemble": 0.5},
                "cnn_only": {"vit": 0.2, "cnn": 0.8, "ensemble": 0.5},
                "both": {"vit": 0.95, "cnn": 0.9, "ensemble": 0.92},
            },
            eval_samples=24,
        )
        text = format_table4(result)
        assert "vit_l16" in text and "Ensemble" in text
        assert "92.0%" in text


class TestGeometryStudy:
    def test_toy_problem_is_learnable(self):
        points, labels = make_toy_problem(num_samples=120)
        model = train_toy_classifier(points, labels)
        assert model.accuracy(points, labels) > 0.9

    def test_geometry_study_trajectories(self):
        study = run_geometry_study(epsilon=0.5, step_size=0.1, steps=8)
        assert set(study.trajectories) == {"fgsm", "pgd", "mim"}
        fgsm = study.trajectories["fgsm"]
        pgd = study.trajectories["pgd"]
        assert len(fgsm.points) == 2  # one step
        assert len(pgd.points) == 9  # origin + steps
        # Every trajectory stays inside the epsilon ball (the P operator of Fig. 3).
        for trajectory in study.trajectories.values():
            assert trajectory.max_linf <= study.epsilon + 1e-9
        # The iterative attacks should cross the decision boundary on this toy task.
        assert pgd.crossed_boundary or study.trajectories["mim"].crossed_boundary
