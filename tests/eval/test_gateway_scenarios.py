"""Engine tests for the serving_tail_latency / serving_soak gateway scenarios."""

from __future__ import annotations

import pytest

from repro.eval.engine import (
    ExperimentEngine,
    GATEWAY_SCALES,
    build_scenario,
    scenario_catalog,
)
from repro.eval.tables import render_run
from repro.utils.rng import set_global_seed

#: Small enough for the tier-1 suite: the defender trains in seconds and the
#: simulation itself is cheap at any request count.
_TINY = dict(
    train_per_class=12,
    test_per_class=6,
    train_epochs=2,
    requests=400,
    num_sessions=2000,
    max_batch=4,
    replicas=2,
)


@pytest.fixture(autouse=True)
def _seed():
    set_global_seed(20230913)


class TestGatewayScenarioRegistry:
    def test_presets_cover_every_scale(self):
        assert set(GATEWAY_SCALES) == {"tiny", "bench", "full"}
        # The full preset spans the paper-scale session population.
        assert GATEWAY_SCALES["full"]["num_sessions"] >= 1_000_000

    def test_build_routes_overrides(self):
        scenario = build_scenario(
            "serving_tail_latency", scale="tiny", max_batch=16, train_per_class=9
        )
        assert scenario.kind == "serving_tail_latency"
        assert scenario.params["max_batch"] == 16
        assert scenario.config.train_per_class == 9
        assert len(scenario.params["loads"]) >= 3
        assert scenario.params["policies"] == ("continuous", "static")

    def test_soak_scenario_autoscales_with_partial_attestation(self):
        scenario = build_scenario("serving_soak", scale="tiny")
        assert scenario.kind == "serving_soak"
        assert scenario.params["autoscale"] is True
        assert 0.0 < scenario.params["attested_fraction"] < 1.0

    def test_catalog_reports_gateway_kinds(self):
        rows = {row["name"]: row for row in scenario_catalog()}
        assert rows["serving_tail_latency"]["kind"] == "serving_tail_latency"
        assert rows["serving_soak"]["kind"] == "serving_soak"


@pytest.mark.slow
class TestGatewayScenarioRuns:
    def test_tail_latency_record_gate_and_render(self):
        engine = ExperimentEngine()
        record = engine.run("serving_tail_latency", scale="tiny", **_TINY)
        results = record.results
        assert len(results["sweep"]) >= 3
        for row in results["sweep"]:
            for policy in results["policies"]:
                cell = row[policy]
                assert cell["p50_us"] <= cell["p99_us"] <= cell["p999_us"]
                assert 0.0 <= cell["slo_attainment"] <= 1.0
                assert len(cell["latency_digest"]) == 64
        top = max(results["sweep"], key=lambda row: row["load"])
        assert top["continuous"]["p99_us"] <= top["static"]["p99_us"]
        assert results["gate"]["passed"] is True
        rendered = render_run(record)
        assert "Serving tail latency" in rendered
        assert "gate [PASS]" in rendered

    def test_tail_latency_is_deterministic_across_runs(self):
        engine = ExperimentEngine()
        digests = []
        for _ in range(2):
            set_global_seed(20230913)
            record = engine.run("serving_tail_latency", scale="tiny", **_TINY)
            digests.append(
                [
                    (row["load"], row[policy]["latency_digest"])
                    for row in record.results["sweep"]
                    for policy in record.results["policies"]
                ]
            )
        assert digests[0] == digests[1]

    def test_soak_record_invariants_and_render(self):
        engine = ExperimentEngine()
        record = engine.run("serving_soak", scale="tiny", **_TINY)
        results = record.results
        assert results["invariants"]["offered_equals_admitted_plus_shed"] is True
        assert results["invariants"]["all_admitted_completed"] is True
        metrics = results["metrics"]
        # attested_fraction < 1 guarantees unattested shedding at this scale.
        assert metrics["shed"].get("unattested", 0) > 0
        assert metrics["offered"] == _TINY["requests"]
        rendered = render_run(record)
        assert "Serving soak" in rendered
        assert "invariants" in rendered
