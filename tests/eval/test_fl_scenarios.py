"""Tests of the federated (fl_*) scenarios through the experiment engine."""

from __future__ import annotations

import json

import pytest

from repro.eval.engine import ExecutorConfig, ExperimentEngine, build_scenario, list_scenarios
from repro.eval.tables import render_run
from repro.run import main

#: Overrides that shrink a tiny fl scenario to unit-test size.
_SMOKE = dict(
    train_per_class=8,
    test_per_class=4,
    eval_samples=6,
    num_clients=2,
    num_rounds=1,
    max_attack_steps=2,
)

FL_SCENARIOS = (
    "fl_fedavg",
    "fl_robust_aggregation",
    "fl_poisoning",
    "fl_shielded_global",
    "fl_thousand_clients",
)


class TestRegistry:
    def test_all_fl_scenarios_are_listed(self):
        listed = list_scenarios()
        for name in FL_SCENARIOS:
            assert name in listed
            assert listed[name]

    def test_fl_overrides_split_between_params_and_config(self):
        scenario = build_scenario(
            "fl_fedavg", scale="tiny", num_clients=7, train_per_class=9
        )
        assert scenario.kind == "federated"
        assert scenario.params["num_clients"] == 7
        assert scenario.config.train_per_class == 9

    def test_bare_cli_values_coerce_to_tuple_params(self):
        """--set rules=median / --set fractions=0.5 must not iterate scalars."""
        scenario = build_scenario("fl_robust_aggregation", scale="tiny", rules="median")
        assert scenario.params["rules"] == ("median",)
        scenario = build_scenario("fl_poisoning", scale="tiny", fractions=0.5)
        assert scenario.params["fractions"] == (0.5,)

    def test_fl_params_without_defaults_route_to_params(self):
        """dirichlet_alpha etc. must not leak into the ExperimentConfig."""
        scenario = build_scenario(
            "fl_fedavg", scale="tiny", partition="dirichlet", dirichlet_alpha=0.1
        )
        assert scenario.params["partition"] == "dirichlet"
        assert scenario.params["dirichlet_alpha"] == 0.1
        scenario = build_scenario("fl_poisoning", scale="tiny", poison_fraction=0.3)
        assert scenario.params["poison_fraction"] == 0.3


class TestEngineRuns:
    def test_fedavg_persists_schema_valid_json(self, tmp_path):
        engine = ExperimentEngine(results_dir=tmp_path)
        record = engine.run("fl_fedavg", scale="tiny", **_SMOKE)
        payload = json.loads((tmp_path / "runs" / "fl_fedavg.json").read_text())
        assert payload["kind"] == "federated"
        results = payload["results"]
        assert results["task"] == "fedavg"
        assert results["num_clients"] == 2
        assert len(results["rounds"]) == 1
        round_entry = results["rounds"][0]
        for key in (
            "round_index",
            "participating_clients",
            "global_accuracy",
            "mean_client_loss",
            "update_bytes",
            "compromised_clients",
        ):
            assert key in round_entry
        assert round_entry["update_bytes"] > 0
        # Both the live record and the reloaded JSON render.
        assert "task=fedavg" in render_run(record)
        assert "task=fedavg" in render_run(payload)

    def test_robust_aggregation_reports_every_rule(self, tmp_path):
        engine = ExperimentEngine(results_dir=tmp_path)
        record = engine.run(
            "fl_robust_aggregation",
            scale="tiny",
            **dict(_SMOKE, num_clients=4, rules=("fedavg", "median")),
        )
        rules = record.results["rules"]
        assert set(rules) == {"fedavg", "median"}
        for entry in rules.values():
            assert "final_accuracy" in entry and "backdoor_success" in entry

    def test_shielded_global_attests_and_seals_traffic(self, tmp_path):
        engine = ExperimentEngine(results_dir=tmp_path)
        record = engine.run("fl_shielded_global", scale="tiny", **_SMOKE)
        results = record.results
        assert results["secure"]["attested_clients"] == 2
        # broadcast + update sealed per client per round
        assert results["secure"]["sealed_messages"] == 4
        assert results["secure"]["sealed_bytes"] > 0
        assert set(results["robust_accuracy"]) == {"unshielded", "shielded"}

    def test_poisoning_sweeps_fractions(self, tmp_path):
        engine = ExperimentEngine(results_dir=tmp_path)
        record = engine.run(
            "fl_poisoning",
            scale="tiny",
            **dict(_SMOKE, num_clients=3, num_compromised=1, fractions=(0.0, 0.5)),
        )
        sweep = record.results["sweep"]
        assert [entry["poison_fraction"] for entry in sweep] == [0.0, 0.5]

    def test_thousand_clients_reports_throughput_and_bytes(self, tmp_path):
        engine = ExperimentEngine(results_dir=tmp_path)
        record = engine.run(
            "fl_thousand_clients",
            scale="tiny",
            num_clients=12,
            train_per_class=8,
            test_per_class=4,
        )
        results = record.results
        assert results["task"] == "thousand_clients"
        assert results["compression"] == "none"
        assert len(results["rounds"][0]["participating_clients"]) == 12
        for key in (
            "rounds_per_second",
            "updates_per_second",
            "bytes_on_wire",
            "dense_bytes",
            "compression_ratio",
            "elapsed_seconds",
        ):
            assert key in results, key
        assert results["bytes_on_wire"] == results["dense_bytes"]
        assert results["compression_ratio"] == pytest.approx(1.0)

    def test_thousand_clients_quantized_compression_cuts_bytes(self, tmp_path):
        engine = ExperimentEngine(results_dir=tmp_path)
        dense = engine.run(
            "fl_thousand_clients",
            scale="tiny",
            num_clients=8,
            train_per_class=8,
            test_per_class=4,
        ).results
        quant = engine.run(
            "fl_thousand_clients",
            scale="tiny",
            num_clients=8,
            train_per_class=8,
            test_per_class=4,
            compression="delta-int8",
        ).results
        assert quant["compression"] == "delta-int8"
        assert quant["bytes_on_wire"] * 3 <= dense["bytes_on_wire"]
        assert quant["compression_ratio"] >= 3.0

    def test_transport_follows_executor_backend(self, tmp_path):
        engine = ExperimentEngine(
            results_dir=tmp_path,
            executor=ExecutorConfig(backend="thread", max_workers=2),
        )
        record = engine.run("fl_fedavg", scale="tiny", **_SMOKE)
        assert record.results["transport"] == "thread"


@pytest.mark.slow
class TestCli:
    def test_fl_smoke_produces_json(self, tmp_path, capsys):
        args = ["fl_fedavg", "--scale", "tiny", "--results-dir", str(tmp_path)]
        for key, value in _SMOKE.items():
            args += ["--set", f"{key}={value}"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Federated — task=fedavg" in out
        assert (tmp_path / "runs" / "fl_fedavg.json").is_file()
