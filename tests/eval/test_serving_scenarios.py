"""Engine tests for the serving_throughput / serving_latency_slo scenarios."""

from __future__ import annotations

import pytest

from repro.eval.engine import (
    ExperimentEngine,
    SERVING_SCALES,
    build_scenario,
    scenario_catalog,
)
from repro.eval.tables import render_run
from repro.utils.rng import set_global_seed

_TINY = dict(
    train_per_class=12,
    test_per_class=6,
    train_epochs=2,
    requests=12,
    max_batch=4,
    sealed=1,
)


@pytest.fixture(autouse=True)
def _seed():
    set_global_seed(20230913)


class TestServingScenarioRegistry:
    def test_presets_cover_every_scale(self):
        assert set(SERVING_SCALES) == {"tiny", "bench", "full"}

    def test_build_routes_overrides(self):
        scenario = build_scenario(
            "serving_throughput", scale="tiny", max_batch=16, train_per_class=9
        )
        assert scenario.kind == "serving_throughput"
        assert scenario.params["max_batch"] == 16
        assert scenario.config.train_per_class == 9
        assert scenario.params["model"] == "simple_cnn"

    def test_latency_scenario_has_slo_params(self):
        scenario = build_scenario("serving_latency_slo", scale="tiny")
        assert scenario.kind == "serving_latency"
        assert scenario.params["target_us"] > 0
        assert len(scenario.params["waits"]) >= 2

    def test_catalog_reports_kinds_and_scales(self):
        rows = {row["name"]: row for row in scenario_catalog()}
        assert rows["serving_throughput"]["kind"] == "serving_throughput"
        assert rows["serving_latency_slo"]["kind"] == "serving_latency"
        assert rows["serving_throughput"]["scales"] == ("tiny", "bench", "full")
        assert rows["table3_cifar10"]["kind"] == "individual"


@pytest.mark.slow
class TestServingScenarioRuns:
    def test_throughput_record_and_render(self):
        engine = ExperimentEngine()
        record = engine.run("serving_throughput", scale="tiny", **_TINY)
        results = record.results
        assert results["parity"]["captured_vs_eager"] is True
        assert results["parity"]["batched_vs_single"] is True
        assert results["batched"]["requests"] == _TINY["requests"]
        assert results["single"]["world_switches_per_request"] == pytest.approx(2.0)
        assert results["batched"]["world_switches_per_request"] < 2.0
        assert results["sealed"] == {"requests": 1, "roundtrip_ok": True}
        assert results["partition"] == [
            {"stage": "stem", "secure": True},
            {"stage": "trunk", "secure": False},
        ]
        rendered = render_run(record)
        assert "Serving throughput" in rendered
        assert "switches/req" in rendered

    def test_latency_record_and_render(self):
        engine = ExperimentEngine()
        record = engine.run(
            "serving_latency_slo", scale="tiny", waits=(0.0, 1000.0), **_TINY
        )
        sweep = record.results["sweep"]
        assert [row["max_wait_us"] for row in sweep] == [0.0, 1000.0]
        for row in sweep:
            assert 0.0 <= row["slo_attainment"] <= 1.0
            assert row["latency_us_p99"] >= row["latency_us_p50"]
        # With no wait budget every batch is a single request; a budget
        # amortises the two boundary crossings over larger batches.
        assert sweep[0]["world_switches_per_request"] >= sweep[1]["world_switches_per_request"]
        rendered = render_run(record)
        assert "Serving latency" in rendered
        assert "SLO" in rendered
