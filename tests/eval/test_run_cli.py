"""Tests of the ``python -m repro.run`` CLI and scripts/update_experiments.py."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.run import _parse_override, main

_REPO_ROOT = Path(__file__).resolve().parents[2]

_TINY_ARGS = [
    "--scale",
    "tiny",
    "--set",
    "models=simple_cnn",
    "--set",
    "attacks=fgsm",
    "--set",
    "train_per_class=12",
    "--set",
    "test_per_class=4",
    "--set",
    "train_epochs=2",
    "--set",
    "eval_samples=6",
]


class TestParseOverride:
    def test_literal_interpretation(self):
        assert _parse_override("train_epochs=3") == ("train_epochs", 3)
        assert _parse_override("train_lr=0.005") == ("train_lr", 0.005)
        assert _parse_override("dataset=cifar100") == ("dataset", "cifar100")
        assert _parse_override("attacks=fgsm,pgd") == ("attacks", ("fgsm", "pgd"))
        assert _parse_override("num_classes=none") == ("num_classes", None)

    def test_malformed_override_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_override("not-an-override")


class TestCli:
    def test_list_scenarios(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3_cifar10" in out
        assert "ablation_epsilon" in out

    def test_list_shows_kinds_and_scales(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.startswith("table3_cifar10"):
                assert "individual" in line
                assert "tiny/bench/full" in line
                break
        else:  # pragma: no cover - the scenario is always registered
            pytest.fail("table3_cifar10 missing from --list output")
        assert "serving_throughput" in out
        assert "federated" in out

    def test_list_groups_scenarios_by_subsystem(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        # The three group headers appear, in engine -> federated -> serving
        # order, and each scenario sits under its subsystem's header.
        positions = {group: out.index(f"[{group}]") for group in ("engine", "federated", "serving")}
        assert positions["engine"] < positions["federated"] < positions["serving"]
        assert positions["engine"] < out.index("table3_cifar10") < positions["federated"]
        assert positions["federated"] < out.index("fl_fedavg") < positions["serving"]
        assert out.index("serving_tail_latency") > positions["serving"]
        assert out.index("serving_soak") > positions["serving"]

    def test_cache_stats_on_empty_directory(self, tmp_path, capsys):
        assert main(["--cache-stats", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 cached defender(s)" in out

    def test_missing_scenario_is_an_error(self):
        assert main([]) == 2

    def test_unknown_scenario_is_an_error(self):
        assert main(["definitely_not_a_scenario", "--no-persist"]) == 2

    @pytest.mark.slow
    def test_run_persists_json_and_prints_table(self, tmp_path, capsys):
        code = main(["table3_cifar10", *_TINY_ARGS, "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table III — Robust accuracy" in out
        record = json.loads((tmp_path / "runs" / "table3_cifar10.json").read_text())
        assert record["scenario"] == "table3_cifar10"
        assert record["results"][0]["model_name"] == "simple_cnn"
        assert (tmp_path / "cache" / "defenders").is_dir()


def _load_update_experiments():
    path = _REPO_ROOT / "scripts" / "update_experiments.py"
    spec = importlib.util.spec_from_file_location("update_experiments", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
class TestUpdateExperiments:
    def test_splices_rendered_json_into_markers(self, tmp_path, monkeypatch, capsys):
        assert main(["table3_cifar10", *_TINY_ARGS, "--results-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        document = tmp_path / "EXPERIMENTS.md"
        document.write_text(
            "# doc\n\n<!-- BEGIN RESULTS: table3 -->\nplaceholder\n"
            "<!-- END RESULTS: table3 -->\n\n<!-- BEGIN RESULTS: table4 -->\n"
            "placeholder\n<!-- END RESULTS: table4 -->\n"
        )
        module = _load_update_experiments()
        monkeypatch.setattr(sys, "argv", ["update_experiments.py", str(tmp_path), str(document)])
        module.main()
        text = document.read_text()
        assert "Table III — Robust accuracy" in text
        assert "placeholder" not in text.split("table4 -->")[0]
        # The table4 section has no run yet and keeps its placeholder.
        assert "placeholder" in text
        # Idempotent: splicing again leaves the document unchanged.
        module.main()
        assert document.read_text() == text

    def test_exits_when_no_runs_exist(self, tmp_path, monkeypatch):
        module = _load_update_experiments()
        document = tmp_path / "EXPERIMENTS.md"
        document.write_text("# doc\n")
        monkeypatch.setattr(sys, "argv", ["update_experiments.py", str(tmp_path), str(document)])
        with pytest.raises(SystemExit):
            module.main()
