"""Tests of scripts/compare_bench.py, the BENCH trajectory regression gate."""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_compare_bench():
    path = _REPO_ROOT / "scripts" / "compare_bench.py"
    spec = importlib.util.spec_from_file_location("compare_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path: Path, metrics: dict) -> Path:
    path.write_text(
        json.dumps(
            {
                "area": "ops",
                "git_sha": "deadbeef",
                "replay_threads": 4,
                "dtype": "float64",
                "metrics": metrics,
            }
        )
    )
    return path


class TestDirectionHeuristic:
    def test_time_metrics_are_lower_is_better(self):
        module = _load_compare_bench()
        assert module.lower_is_better("chain_eager_seconds")
        assert module.lower_is_better("kernel_dispatch_us")
        assert module.lower_is_better("gateway_shed_rate")
        assert module.lower_is_better("thousand_bytes_on_wire")
        assert module.lower_is_better("quantized_bytes_on_wire")
        assert not module.lower_is_better("batched_throughput_rps")
        assert not module.lower_is_better("quantized_compression_ratio")
        assert not module.lower_is_better("parallel_speedup")
        assert not module.lower_is_better("gateway_slo_attainment")

    def test_regression_ratio_is_direction_normalized(self):
        module = _load_compare_bench()
        # 20% slower and 20% less throughput both read as +0.2 regression.
        assert module.regression_ratio("x_seconds", 1.2, 1.0) == pytest.approx(0.2)
        assert module.regression_ratio("x_rps", 0.8, 1.0) == pytest.approx(0.2)
        # Improvements are negative in both directions.
        assert module.regression_ratio("x_seconds", 0.5, 1.0) < 0
        assert module.regression_ratio("x_rps", 2.0, 1.0) < 0


class TestGate:
    def test_passes_within_tolerance(self, tmp_path, capsys):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0, "speedup": 2.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 1.1, "speedup": 1.9})
        assert module.main([str(current), str(previous)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_fails_beyond_tolerance(self, tmp_path, capsys):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 1.5})
        assert module.main([str(current), str(previous)]) == 1
        assert "replay_seconds" in capsys.readouterr().out

    def test_throughput_drop_fails(self, tmp_path):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"queries_per_second": 100.0})
        current = _write(tmp_path / "cur.json", {"queries_per_second": 50.0})
        assert module.main([str(current), str(previous)]) == 1

    def test_custom_tolerance(self, tmp_path):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 1.5})
        assert module.main([str(current), str(previous), "--tolerance", "0.6"]) == 0

    def test_new_and_removed_metrics_never_gate(self, tmp_path, capsys):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"old_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"new_seconds": 9.0})
        assert module.main([str(current), str(previous)]) == 0
        out = capsys.readouterr().out
        assert "only in baseline" in out
        assert "only in current" in out

    def test_cpu_count_mismatch_reports_without_gating(self, tmp_path, capsys):
        """Runs from different hosts never gate — speedups aren't comparable."""
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 2.0})
        for path, cpus in ((previous, 8), (current, 1)):
            payload = json.loads(path.read_text())
            payload["cpu_count"] = cpus
            path.write_text(json.dumps(payload))
        assert module.main([str(current), str(previous)]) == 0
        out = capsys.readouterr().out
        assert "cpu_count changed" in out
        assert "host mismatch" in out

    def test_shard_config_mismatch_reports_without_gating(self, tmp_path, capsys):
        """Different FLOP floors / forced fan-out are different benchmarks."""
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 2.0})
        configs = (
            {"min_band_flops": 2_000_000, "min_shard_seconds": 75e-6, "force_parallel": False},
            {"min_band_flops": 1, "min_shard_seconds": 75e-6, "force_parallel": True},
        )
        for path, config in zip((previous, current), configs):
            payload = json.loads(path.read_text())
            payload["shard_config"] = config
            path.write_text(json.dumps(payload))
        assert module.main([str(current), str(previous)]) == 0
        assert "shard_config changed" in capsys.readouterr().out

    def test_matching_shard_config_still_gates(self, tmp_path):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 2.0})
        config = {"min_band_flops": 2_000_000, "min_shard_seconds": 75e-6, "force_parallel": False}
        for path in (previous, current):
            payload = json.loads(path.read_text())
            payload["shard_config"] = dict(config)
            path.write_text(json.dumps(payload))
        assert module.main([str(current), str(previous)]) == 1

    def test_trajectory_records_shard_config(self, tmp_path, monkeypatch):
        """write_bench_trajectory pins the active sharding regime."""
        conftest_path = _REPO_ROOT / "benchmarks" / "conftest.py"
        spec = importlib.util.spec_from_file_location("bench_conftest_shard", conftest_path)
        bench_conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_conftest)
        monkeypatch.setattr(bench_conftest, "REPO_ROOT", tmp_path)
        path = bench_conftest.write_bench_trajectory("ops", {"x_seconds": 1.0})
        payload = json.loads(path.read_text())
        config = payload["shard_config"]
        assert set(config) == {"min_band_flops", "min_shard_seconds", "force_parallel"}
        assert config["min_band_flops"] > 0
        assert isinstance(config["force_parallel"], bool)

    def test_matching_cpu_count_still_gates(self, tmp_path):
        module = _load_compare_bench()
        previous = _write(tmp_path / "prev.json", {"replay_seconds": 1.0})
        current = _write(tmp_path / "cur.json", {"replay_seconds": 2.0})
        for path in (previous, current):
            payload = json.loads(path.read_text())
            payload["cpu_count"] = 8
            path.write_text(json.dumps(payload))
        assert module.main([str(current), str(previous)]) == 1

    def test_rejects_non_trajectory_file(self, tmp_path):
        module = _load_compare_bench()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a trajectory"}))
        good = _write(tmp_path / "good.json", {"x_seconds": 1.0})
        with pytest.raises(SystemExit, match="metrics"):
            module.main([str(good), str(bad)])

    def test_same_sha_trajectory_writes_merge(self, tmp_path, monkeypatch):
        """Two benches feeding one area merge their metrics at the same SHA."""
        conftest_path = _REPO_ROOT / "benchmarks" / "conftest.py"
        spec = importlib.util.spec_from_file_location("bench_conftest_merge", conftest_path)
        bench_conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_conftest)
        monkeypatch.setattr(bench_conftest, "REPO_ROOT", tmp_path)
        bench_conftest.write_bench_trajectory("serving", {"throughput_rps": 100.0})
        path = bench_conftest.write_bench_trajectory(
            "serving", {"gateway_p99_us": 5000.0, "throughput_rps": 120.0}
        )
        payload = json.loads(path.read_text())
        # Same revision: the second writer merged in, overriding shared keys.
        assert payload["metrics"] == {
            "gateway_p99_us": 5000.0,
            "throughput_rps": 120.0,
        }
        assert payload["cpu_count"] == (os.cpu_count() or 1)
        # A file from a different revision is replaced, never mixed.
        stale = dict(payload, git_sha="0" * 40)
        path.write_text(json.dumps(stale))
        payload = json.loads(
            bench_conftest.write_bench_trajectory("serving", {"fresh_rps": 7.0}).read_text()
        )
        assert payload["metrics"] == {"fresh_rps": 7.0}
        assert payload["git_sha"] != "0" * 40

    def test_gates_the_real_trajectory_files(self, tmp_path):
        """A BENCH file written by the bench conftest gates cleanly vs itself."""
        conftest_path = _REPO_ROOT / "benchmarks" / "conftest.py"
        spec = importlib.util.spec_from_file_location("bench_conftest", conftest_path)
        bench_conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_conftest)
        module = _load_compare_bench()
        record = {
            "area": "ops",
            "git_sha": bench_conftest._git_sha(),
            "replay_threads": 4,
            "dtype": "float64",
            "metrics": {"wide_replay_serial_seconds": 0.5, "wide_replay_parallel_speedup": 2.2},
        }
        path = tmp_path / "BENCH_ops.json"
        path.write_text(json.dumps(record))
        assert module.main([str(path), str(path)]) == 0
        assert len(record["git_sha"]) in (7, 40) or record["git_sha"] == "unknown"
