"""Tests of the experiment engine: cache, registry, executor, results, cells."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import FGSM, PGD, make_attacker_view
from repro.eval.engine import (
    ArtifactCache,
    CellExecutor,
    ExecutorConfig,
    ExperimentEngine,
    Scenario,
    build_scenario,
    list_scenarios,
    load_run,
    record_to_dict,
    register_scenario,
    run_attack_in_batches,
    save_run,
    scaled_experiment_config,
    stable_hash,
    unregister_scenario,
)
from repro.eval.harness import ExperimentConfig
from repro.eval.tables import render_run
from repro.models.simple import SimpleCNN, SimpleCNNConfig
from repro.utils.rng import set_global_seed

#: Unit-test-sized configuration (simple models, few samples, few steps).
_TINY = dict(
    dataset="cifar10",
    models=("simple_cnn",),
    attacks=("fgsm", "pgd"),
    image_size=16,
    train_per_class=12,
    test_per_class=4,
    train_epochs=2,
    train_lr=5e-3,
    eval_samples=6,
    attack_batch_size=6,
    max_attack_steps=2,
    apgd_steps=2,
    saga_steps=2,
    epsilon_scale=2.0,
    ensemble_vit="simple_cnn",
    ensemble_cnn="mlp",
)


def _tiny_config(**overrides) -> ExperimentConfig:
    values = dict(_TINY)
    values.update(overrides)
    return ExperimentConfig(**values)


class TestStableHash:
    def test_deterministic_and_order_independent(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})


class TestArtifactCache:
    def test_same_config_hits_without_retraining(self):
        cache = ArtifactCache()
        config = _tiny_config()
        first = cache.get_defender("simple_cnn", config)
        second = cache.get_defender("simple_cnn", config)
        assert first is second
        assert cache.stats.trainings == 1
        assert cache.stats.defender_hits == 1
        assert cache.stats.defender_misses == 1

    def test_training_call_spy_confirms_single_fit(self, monkeypatch):
        import repro.eval.engine.cache as cache_module

        calls = []
        real_fit = cache_module.fit_classifier

        def spy(*args, **kwargs):
            calls.append(args[0])
            return real_fit(*args, **kwargs)

        monkeypatch.setattr(cache_module, "fit_classifier", spy)
        cache = ArtifactCache()
        config = _tiny_config()
        cache.get_defender("simple_cnn", config)
        cache.get_defender("simple_cnn", config)
        assert len(calls) == 1

    def test_changed_config_field_misses(self):
        cache = ArtifactCache()
        config = _tiny_config()
        cache.get_defender("simple_cnn", config)
        cache.get_defender("simple_cnn", _tiny_config(train_lr=1e-3))
        assert cache.stats.trainings == 2
        assert cache.stats.defender_hits == 0

    def test_eval_only_fields_do_not_change_the_key(self):
        cache = ArtifactCache()
        config = _tiny_config()
        key = cache.defender_key("simple_cnn", config)
        assert key == cache.defender_key("simple_cnn", _tiny_config(eval_samples=99))
        assert key == cache.defender_key("simple_cnn", _tiny_config(max_attack_steps=9))
        assert key != cache.defender_key("mlp", config)

    def test_key_depends_on_global_seed(self):
        cache = ArtifactCache()
        config = _tiny_config()
        key = cache.defender_key("simple_cnn", config)
        set_global_seed(4321)
        assert key != cache.defender_key("simple_cnn", config)

    def test_disk_tier_round_trips_state_dict_bit_exactly(self, tmp_path):
        config = _tiny_config()
        writer = ArtifactCache(directory=tmp_path)
        trained = writer.get_defender("simple_cnn", config)
        reader = ArtifactCache(directory=tmp_path)
        loaded = reader.get_defender("simple_cnn", config)
        assert reader.stats.trainings == 0
        assert reader.stats.disk_hits == 1
        original = trained.state_dict()
        restored = loaded.state_dict()
        assert set(original) == set(restored)
        for name, value in original.items():
            assert value.dtype == restored[name].dtype
            np.testing.assert_array_equal(value, restored[name], err_msg=name)

    def test_dataset_cache_hits(self):
        cache = ArtifactCache()
        config = _tiny_config()
        assert cache.get_dataset(config) is cache.get_dataset(config)
        assert cache.stats.dataset_misses == 1
        assert cache.stats.dataset_hits == 1

    def test_stale_disk_artifact_falls_back_to_retraining(self, tmp_path):
        """A cached state_dict that no longer fits the architecture must be
        discarded (with a retrain), not crash the run."""
        from repro.utils.serialization import load_state, save_state

        config = _tiny_config()
        writer = ArtifactCache(directory=tmp_path)
        writer.get_defender("simple_cnn", config)
        key = writer.defender_key("simple_cnn", config)
        path = tmp_path / "defenders" / f"{key}.npz"
        state = load_state(path)
        name = next(iter(state))
        state[f"renamed::{name}"] = state.pop(name)  # simulate a code change
        save_state(path, state)
        reader = ArtifactCache(directory=tmp_path)
        model = reader.get_defender("simple_cnn", config)
        assert reader.stats.trainings == 1
        assert reader.stats.disk_hits == 0
        assert not model.training


class TestCacheDiskBudget:
    def test_fresh_write_survives_even_a_tiny_budget(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path, max_disk_bytes=1)
        cache.get_defender("simple_cnn", _tiny_config())
        stats = cache.disk_stats()
        assert stats["defenders"] == 1  # the hottest entry is never evicted
        assert cache.stats.evictions == 0

    def test_lru_eviction_drops_the_stalest_archive(self, tmp_path):
        import os
        import time

        cache = ArtifactCache(directory=tmp_path, max_disk_bytes=0)  # no eviction yet
        for epochs in (1, 2, 3):
            cache.get_defender("simple_cnn", _tiny_config(train_epochs=epochs))
            time.sleep(0.01)  # distinct mtimes
        entries = cache._disk_entries()
        assert len(entries) == 3
        # Reading the oldest artifact refreshes its LRU clock...
        reader = ArtifactCache(directory=tmp_path, max_disk_bytes=0)
        reader.get_defender("simple_cnn", _tiny_config(train_epochs=1))
        assert reader.stats.disk_hits == 1
        # ...so a budgeted write evicts epochs=2 (now the stalest), keeping
        # the artifact that was just read and the one just written.
        size = max(entry["bytes"] for entry in entries)
        writer = ArtifactCache(directory=tmp_path, max_disk_bytes=3 * size)
        writer.get_defender("simple_cnn", _tiny_config(train_epochs=4))
        remaining = {entry["key"] for entry in writer._disk_entries()}
        evicted_key = writer.defender_key("simple_cnn", _tiny_config(train_epochs=2))
        touched_key = writer.defender_key("simple_cnn", _tiny_config(train_epochs=1))
        assert evicted_key not in remaining
        assert touched_key in remaining
        assert len(remaining) == 3
        assert writer.stats.evictions == 1

    def test_disk_stats_payload(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path, max_disk_bytes=64 * 1024 * 1024)
        cache.get_defender("simple_cnn", _tiny_config())
        stats = cache.disk_stats()
        assert stats["defenders"] == 1
        assert stats["total_bytes"] > 0
        assert stats["budget_bytes"] == 64 * 1024 * 1024
        assert stats["entries"][0]["model"] == "simple_cnn"

    def test_env_budget_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "7")
        cache = ArtifactCache(directory=tmp_path)
        assert cache.max_disk_bytes == 7 * 1024 * 1024


class TestTrainEachDefenderOnce:
    def test_table3_plus_table4_train_each_distinct_defender_once(self, monkeypatch):
        """Acceptance: running Table III then Table IV through one engine
        trains each distinct defender exactly once."""
        import repro.eval.engine.cache as cache_module

        trained_models = []
        real_fit = cache_module.fit_classifier

        def spy(*args, **kwargs):
            trained_models.append(type(args[0]).__name__)
            return real_fit(*args, **kwargs)

        monkeypatch.setattr(cache_module, "fit_classifier", spy)
        engine = ExperimentEngine()
        config = _tiny_config(models=("simple_cnn", "mlp"), attacks=("fgsm",))
        table3 = engine.run(Scenario(name="t3", kind="individual", config=config))
        # Table IV uses the same two defenders (simple_cnn as the "ViT"
        # member, mlp as the "CNN" member) under an identical train config.
        table4 = engine.run(
            Scenario(
                name="t4",
                kind="ensemble",
                config=_tiny_config(
                    models=("simple_cnn", "mlp"),
                    attacks=("fgsm",),
                    ensemble_vit="simple_cnn",
                    ensemble_cnn="mlp",
                ),
            )
        )
        assert len(table3.results) == 2
        assert set(table4.results.robust) == {"none", "vit_only", "cnn_only", "both"}
        assert len(trained_models) == 2, trained_models
        assert engine.cache.stats.trainings == 2
        assert engine.cache.stats.defender_hits >= 2

    def test_fig4_reuses_table4_defenders(self):
        engine = ExperimentEngine()
        config = _tiny_config()
        engine.run(Scenario(name="t4", kind="ensemble", config=config))
        trainings = engine.cache.stats.trainings
        engine.run(
            Scenario(name="f4", kind="saga_samples", config=config, params={"sample_index": 0})
        )
        assert engine.cache.stats.trainings == trainings


class TestScenarioRegistry:
    def test_builtins_are_registered(self):
        names = set(list_scenarios())
        assert {"table3_cifar10", "table4_cifar10", "fig3_geometry", "fig4_saga_sample"} <= names

    def test_build_scenario_applies_scale_and_overrides(self):
        scenario = build_scenario("table3_cifar10", scale="tiny", eval_samples=3)
        assert scenario.kind == "individual"
        assert scenario.config.eval_samples == 3
        assert scenario.config.image_size == 16  # tiny preset

    def test_unknown_scenario_and_scale_raise(self):
        with pytest.raises(KeyError):
            build_scenario("no_such_scenario")
        with pytest.raises(KeyError):
            scaled_experiment_config("huge")

    def test_register_and_unregister_custom_scenario(self):
        @register_scenario("custom_test_scenario", "registry test entry")
        def _build(scale, overrides):
            return Scenario(
                name="custom_test_scenario",
                kind="individual",
                config=scaled_experiment_config(scale, **overrides),
            )

        try:
            assert "custom_test_scenario" in list_scenarios()
            scenario = build_scenario("custom_test_scenario", scale="tiny")
            assert scenario.description == "registry test entry"
            with pytest.raises(ValueError):
                register_scenario("custom_test_scenario")(lambda s, o: None)
        finally:
            unregister_scenario("custom_test_scenario")
        assert "custom_test_scenario" not in list_scenarios()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", kind="nope", config=ExperimentConfig())

    def test_scalar_param_overrides_do_not_iterate_strings(self):
        sweep = build_scenario("ablation_epsilon", scale="tiny", epsilons=0.05)
        assert sweep.params["epsilons"] == (0.05,)
        ablation = build_scenario("ablation_upsampling", scale="tiny", strategies="average")
        assert ablation.params["strategies"] == ("average",)
        multi = build_scenario("ablation_epsilon", scale="tiny", epsilons=("0.01", "0.02"))
        assert multi.params["epsilons"] == (0.01, 0.02)


def _double_cell(payload: dict) -> dict:
    return {"value": payload["value"] * 2}


class TestCellExecutor:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_preserve_order(self, backend):
        executor = CellExecutor(ExecutorConfig(backend=backend, max_workers=3))
        payloads = [{"value": index} for index in range(7)]
        results = executor.map(_double_cell, payloads)
        assert [cell["value"] for cell in results] == [0, 2, 4, 6, 8, 10, 12]

    def test_env_provides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "serial")
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "5")
        executor = CellExecutor()
        assert executor.config.backend == "serial"
        assert executor.config.max_workers == 5

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "process")
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "8")
        executor = CellExecutor(ExecutorConfig(backend="serial", max_workers=1))
        assert executor.config.backend == "serial"
        assert executor.config.max_workers == 1

    def test_parallel_backend_without_workers_uses_the_machine(self):
        import os

        executor = CellExecutor(ExecutorConfig(backend="thread"))
        backend, workers = executor._resolved(num_tasks=1000)
        expected = os.cpu_count() or 1
        assert workers == min(expected, 1000)
        assert backend == ("thread" if workers > 1 else "serial")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecutorConfig(backend="gpu")

    @pytest.mark.slow
    def test_thread_backend_matches_serial_on_real_cells(self):
        def run(backend):
            set_global_seed(777)
            engine = ExperimentEngine(
                executor=CellExecutor(ExecutorConfig(backend=backend, max_workers=4))
            )
            record = engine.run(Scenario(name="eq", kind="individual", config=_tiny_config()))
            return [result.robust for result in record.results]

        assert run("serial") == run("thread")


class TestStructuredResults:
    def test_record_round_trips_through_json(self, tmp_path):
        engine = ExperimentEngine()
        record = engine.run(Scenario(name="json_rt", kind="individual", config=_tiny_config()))
        path = save_run(record, tmp_path)
        loaded = load_run(path)
        assert loaded["scenario"] == "json_rt"
        assert loaded["kind"] == "individual"
        assert loaded["results"] == record_to_dict(record)["results"]
        # The rendered table is identical from the live record and the JSON.
        assert render_run(loaded) == render_run(record)

    def test_ensemble_and_fig4_render_from_json(self, tmp_path):
        engine = ExperimentEngine()
        config = _tiny_config()
        for name, kind, params in (
            ("rt_t4", "ensemble", {}),
            ("rt_f4", "saga_samples", {"sample_index": 0}),
        ):
            record = engine.run(Scenario(name=name, kind=kind, config=config, params=params))
            loaded = load_run(save_run(record, tmp_path))
            assert render_run(loaded) == render_run(record)

    def test_persisted_run_keeps_semantic_row_order(self, tmp_path):
        engine = ExperimentEngine()
        record = engine.run(Scenario(name="order", kind="ensemble", config=_tiny_config()))
        loaded = load_run(save_run(record, tmp_path))
        assert list(loaded["results"]["robust"]) == ["none", "vit_only", "cnn_only", "both"]


def _tiny_view():
    model = SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=3, widths=(4, 8), image_size=8))
    return model, make_attacker_view(model)


class TestRunAttackInBatchesEngine:
    def test_empty_input_returns_empty_array_of_right_shape(self):
        _, view = _tiny_view()
        images = np.zeros((0, 3, 8, 8))
        out = run_attack_in_batches(FGSM(epsilon=0.05), view, images, np.zeros(0, np.int64), 4)
        assert out.shape == (0, 3, 8, 8)

    def test_invalid_batch_size_rejected(self):
        _, view = _tiny_view()
        with pytest.raises(ValueError):
            run_attack_in_batches(FGSM(), view, np.zeros((2, 3, 8, 8)), np.zeros(2, np.int64), 0)

    def test_batched_matches_single_shot_with_random_start_under_fixed_seed(self, rng):
        _, view = _tiny_view()
        images = rng.uniform(size=(6, 3, 8, 8))
        labels = np.array([0, 1, 2, 0, 1, 2])
        # A stochastic attack (PGD with random start): the same seeded
        # generator must give identical adversarials batched or single-shot.
        batched = run_attack_in_batches(
            PGD(epsilon=0.05, step_size=0.02, steps=2, random_start=True,
                rng=np.random.default_rng(123)),
            view, images, labels, batch_size=2,
        )
        single = run_attack_in_batches(
            PGD(epsilon=0.05, step_size=0.02, steps=2, random_start=True,
                rng=np.random.default_rng(123)),
            view, images, labels, batch_size=6,
        )
        np.testing.assert_allclose(batched, single)
