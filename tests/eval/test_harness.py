"""End-to-end tests of the experiment harness on unit-test-sized configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    SHIELD_SETTINGS,
    ExperimentConfig,
    prepare_dataset,
    run_ensemble_benchmark,
    run_individual_benchmark,
    saga_sample_study,
    train_defender,
)

_TINY = dict(
    image_size=16,
    train_per_class=24,
    test_per_class=6,
    train_epochs=6,
    train_lr=5e-3,
    eval_samples=10,
    attack_batch_size=10,
    max_attack_steps=4,
    apgd_steps=4,
    saga_steps=4,
    epsilon_scale=2.0,
)


class TestExperimentConfig:
    def test_resolved_num_classes_defaults(self):
        assert ExperimentConfig(dataset="cifar10").resolved_num_classes() == 10
        assert ExperimentConfig(dataset="cifar100").resolved_num_classes() == 100
        assert ExperimentConfig(dataset="imagenet").resolved_num_classes() == 20
        assert ExperimentConfig(dataset="cifar10", num_classes=10).resolved_num_classes() == 10

    def test_attack_suite_config_propagates_scale(self):
        config = ExperimentConfig(epsilon_scale=2.0, max_attack_steps=5)
        suite_config = config.attack_suite_config()
        assert suite_config.epsilon_scale == 2.0
        assert suite_config.max_steps == 5

    def test_prepare_dataset_respects_num_classes(self):
        config = ExperimentConfig(dataset="imagenet", num_classes=6, train_per_class=2, test_per_class=1)
        dataset = prepare_dataset(config)
        assert dataset.num_classes == 6

    def test_cifar10_class_count_is_fixed(self):
        with pytest.raises(ValueError):
            prepare_dataset(ExperimentConfig(dataset="cifar10", num_classes=7))


@pytest.mark.slow
class TestIndividualBenchmark:
    def test_table3_shape_reproduces(self):
        """Unit-test-scale Table III: shielding must help against PGD."""
        config = ExperimentConfig(
            dataset="cifar10",
            models=("simple_cnn",),
            attacks=("fgsm", "pgd"),
            **_TINY,
        )
        results = run_individual_benchmark(config)
        assert len(results) == 1
        result = results[0]
        assert result.clean_accuracy > 0.6
        assert set(result.robust) == {"fgsm", "pgd"}
        for attack in result.robust.values():
            assert 0.0 <= attack["unshielded"] <= 1.0
            assert 0.0 <= attack["shielded"] <= 1.0
        # The headline claim: shielding does not hurt and typically helps.
        assert result.robust["pgd"]["shielded"] >= result.robust["pgd"]["unshielded"]


@pytest.mark.slow
class TestEnsembleBenchmark:
    def test_table4_structure_and_shape(self):
        config = ExperimentConfig(
            dataset="cifar10",
            ensemble_vit="vit_b32",
            ensemble_cnn="simple_cnn",
            **_TINY,
        )
        result = run_ensemble_benchmark(config)
        assert set(result.robust) == set(SHIELD_SETTINGS)
        for setting in SHIELD_SETTINGS:
            for row in ("vit", "cnn", "ensemble"):
                assert 0.0 <= result.robust[setting][row] <= 1.0
        assert result.eval_samples > 0
        # Shielding both members must not be worse than shielding nothing.
        assert result.robust["both"]["ensemble"] >= result.robust["none"]["ensemble"]

    def test_fig4_sample_study(self):
        config = ExperimentConfig(
            dataset="cifar10",
            ensemble_vit="vit_b32",
            ensemble_cnn="simple_cnn",
            **_TINY,
        )
        study = saga_sample_study(config, sample_index=0)
        assert set(study.settings) == set(SHIELD_SETTINGS)
        for outcome in study.settings.values():
            assert outcome["linf"] <= 0.031 * 2.0 + 1e-9
            assert isinstance(outcome["attack_success"], bool)


@pytest.mark.slow
class TestTrainDefender:
    def test_train_defender_reaches_reasonable_accuracy(self):
        config = ExperimentConfig(dataset="cifar10", **_TINY)
        dataset = prepare_dataset(config)
        model = train_defender("simple_cnn", dataset, config)
        assert model.accuracy(dataset.test_images, dataset.test_labels) > 0.6
        assert not model.training
