"""Tests of the attack-engine scenarios (budget curve, robustness curve)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.engine import ExperimentEngine, build_scenario, list_scenarios
from repro.eval.tables import render_run
from repro.utils.rng import set_global_seed

#: Unit-test-sized configuration overrides shared by both scenarios.
_TINY = dict(
    image_size=16,
    train_per_class=12,
    test_per_class=4,
    train_epochs=2,
    train_lr=5e-3,
    eval_samples=6,
    max_attack_steps=3,
    epsilon_scale=2.0,
)


@pytest.fixture(autouse=True)
def _seed():
    set_global_seed(20230913)


class TestBudgetCurveScenario:
    def test_registered(self):
        assert "attack_budget_curve" in list_scenarios()
        assert "robustness_curve" in list_scenarios()

    def test_run_produces_modes_curves_and_query_reduction(self):
        engine = ExperimentEngine()
        record = engine.run(build_scenario("attack_budget_curve", scale="tiny", **_TINY))
        results = record.results
        assert results["attack"] == "pgd"
        assert set(results["settings"]) == {"clear", "shielded"}
        for modes in results["settings"].values():
            assert set(modes) == {"fixed", "active", "query_reduction"}
            assert 0.0 <= modes["query_reduction"] <= 1.0
            assert modes["active"]["sample_queries"] <= modes["fixed"]["sample_queries"]
            for entry in (modes["fixed"], modes["active"]):
                assert entry["curve"], "curve must not be empty"
                queries = [point["sample_queries"] for point in entry["curve"]]
                assert queries == sorted(queries)
        assert render_run(record)  # renders without raising

    def test_backend_override_does_not_change_results(self):
        payloads = {}
        for backend in ("eager", "captured"):
            set_global_seed(20230913)
            record = ExperimentEngine().run(
                build_scenario(
                    "attack_budget_curve", scale="tiny", attack_backend=backend, **_TINY
                )
            )
            payloads[backend] = record.results
        assert payloads["eager"] == payloads["captured"]


class TestRobustnessCurveScenario:
    def test_rows_are_sorted_and_bounded(self):
        engine = ExperimentEngine()
        record = engine.run(
            build_scenario(
                "robustness_curve", scale="tiny", epsilons=(0.05, 0.2), **_TINY
            )
        )
        rows = record.results
        assert [row["epsilon"] for row in rows] == [0.05, 0.2]
        for row in rows:
            for key in (
                "success_unshielded",
                "success_shielded",
                "robust_unshielded",
                "robust_shielded",
            ):
                assert 0.0 <= row[key] <= 1.0
            assert row["success_unshielded"] == pytest.approx(1.0 - row["robust_unshielded"])
        # A bigger ε can only help the white-box attacker.
        assert rows[1]["success_unshielded"] >= rows[0]["success_unshielded"] - 1e-9
        assert render_run(record)

    def test_attack_override(self):
        engine = ExperimentEngine()
        record = engine.run(
            build_scenario(
                "robustness_curve", scale="tiny", attack="fgsm", epsilons=(0.1,), **_TINY
            )
        )
        assert record.results[0]["attack"] == "fgsm"

    def test_unknown_attack_rejected(self):
        engine = ExperimentEngine()
        with pytest.raises(KeyError):
            engine.run(
                build_scenario(
                    "robustness_curve", scale="tiny", attack="warp", epsilons=(0.1,), **_TINY
                )
            )
