"""Tests for the data substrate: synthetic datasets, loaders, splits, transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader,
    SyntheticImageConfig,
    SyntheticImageDataset,
    apply_patch,
    clip_to_unit,
    denormalize,
    dirichlet_partition,
    iid_partition,
    l2_distance,
    linf_distance,
    make_cifar10_like,
    make_cifar100_like,
    make_dataset,
    make_imagenet_like,
    normalize,
    train_validation_split,
)
from repro.utils.rng import set_global_seed


class TestSyntheticDataset:
    def test_shapes_and_ranges(self):
        dataset = make_cifar10_like(train_per_class=5, test_per_class=2)
        assert dataset.train_images.shape == (50, 3, 32, 32)
        assert dataset.test_images.shape == (20, 3, 32, 32)
        assert dataset.train_images.min() >= 0.0
        assert dataset.train_images.max() <= 1.0
        assert dataset.num_classes == 10
        assert dataset.image_shape == (3, 32, 32)
        assert len(dataset) == 50

    def test_every_class_is_present(self):
        dataset = make_cifar10_like(train_per_class=3, test_per_class=1)
        assert set(np.unique(dataset.train_labels)) == set(range(10))
        assert set(np.unique(dataset.test_labels)) == set(range(10))

    def test_generation_is_deterministic_for_a_seed(self):
        set_global_seed(7)
        first = make_cifar10_like(train_per_class=2, test_per_class=1)
        set_global_seed(7)
        second = make_cifar10_like(train_per_class=2, test_per_class=1)
        np.testing.assert_allclose(first.train_images, second.train_images)
        np.testing.assert_array_equal(first.train_labels, second.train_labels)

    def test_samples_cluster_around_their_prototype(self):
        dataset = make_cifar10_like(train_per_class=4, test_per_class=1)
        for class_index in range(3):
            class_images = dataset.train_images[dataset.train_labels == class_index]
            own = np.abs(class_images - dataset.prototypes[class_index]).mean()
            other = np.abs(class_images - dataset.prototypes[(class_index + 1) % 10]).mean()
            assert own < other

    def test_cifar100_and_imagenet_variants(self):
        assert make_cifar100_like(train_per_class=1, test_per_class=1, num_classes=30).num_classes == 30
        assert make_imagenet_like(train_per_class=1, test_per_class=1, num_classes=12).num_classes == 12

    def test_make_dataset_dispatch(self):
        assert make_dataset("cifar10", train_per_class=1, test_per_class=1).num_classes == 10
        with pytest.raises(KeyError):
            make_dataset("svhn")

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(
                SyntheticImageConfig(name="bad", num_classes=2, image_size=4, prototype_resolution=8)
            )


class TestDataLoader:
    def test_batches_cover_everything_once(self, rng):
        images = rng.uniform(size=(23, 3, 4, 4))
        labels = np.arange(23)
        loader = DataLoader(images, labels, batch_size=5, shuffle=False)
        seen = np.concatenate([batch_labels for _, batch_labels in loader])
        np.testing.assert_array_equal(np.sort(seen), labels)
        assert len(loader) == 5

    def test_drop_last(self, rng):
        loader = DataLoader(
            rng.uniform(size=(10, 2)), np.arange(10), batch_size=4, shuffle=False, drop_last=True
        )
        batches = list(loader)
        assert len(batches) == 2
        assert len(loader) == 2

    def test_shuffling_changes_order_but_not_content(self, rng):
        labels = np.arange(16)
        loader = DataLoader(rng.uniform(size=(16, 2)), labels, batch_size=16, shuffle=True)
        _, first = next(iter(loader))
        assert set(first.tolist()) == set(labels.tolist())

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            DataLoader(rng.uniform(size=(4, 2)), np.arange(5))


class TestSplits:
    def test_train_validation_split_sizes(self, rng):
        images = rng.uniform(size=(20, 2))
        labels = np.arange(20)
        (train_x, train_y), (val_x, val_y) = train_validation_split(images, labels, 0.25, rng=rng)
        assert len(train_y) == 15 and len(val_y) == 5
        assert set(train_y.tolist()) | set(val_y.tolist()) == set(range(20))

    def test_train_validation_split_validates_fraction(self, rng):
        with pytest.raises(ValueError):
            train_validation_split(rng.uniform(size=(4, 2)), np.arange(4), 1.5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=10, max_value=60))
    def test_iid_partition_is_a_partition(self, num_clients, num_samples):
        """Property: client shards are disjoint and cover every sample index."""
        labels = np.zeros(num_samples, dtype=np.int64)
        shards = iid_partition(labels, num_clients)
        combined = np.concatenate(shards)
        assert len(combined) == num_samples
        assert len(np.unique(combined)) == num_samples

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.floats(min_value=0.1, max_value=5.0))
    def test_dirichlet_partition_is_a_partition(self, num_clients, alpha):
        labels = np.repeat(np.arange(4), 12)
        shards = dirichlet_partition(labels, num_clients, alpha=alpha)
        combined = np.concatenate([shard for shard in shards if len(shard)])
        assert len(combined) == len(labels)
        assert len(np.unique(combined)) == len(labels)

    def test_partition_argument_validation(self):
        with pytest.raises(ValueError):
            iid_partition(np.zeros(4), 0)
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(4), 2, alpha=0.0)


class TestTransforms:
    def test_normalize_denormalize_roundtrip(self, rng):
        images = rng.uniform(size=(2, 3, 4, 4))
        np.testing.assert_allclose(denormalize(normalize(images)), images)

    def test_clip_to_unit(self):
        np.testing.assert_allclose(clip_to_unit(np.array([-0.5, 0.5, 1.5])), [0.0, 0.5, 1.0])

    def test_apply_patch_only_touches_region(self, rng):
        images = rng.uniform(size=(2, 3, 8, 8)) * 0.5
        patch = np.ones((3, 2, 2))
        patched = apply_patch(images, patch, row=3, col=4)
        np.testing.assert_allclose(patched[:, :, 3:5, 4:6], 1.0)
        mask = np.ones_like(images, dtype=bool)
        mask[:, :, 3:5, 4:6] = False
        np.testing.assert_allclose(patched[mask], images[mask])

    def test_distances(self):
        a = np.zeros((2, 3, 2, 2))
        b = np.full((2, 3, 2, 2), 0.5)
        np.testing.assert_allclose(linf_distance(a, b), [0.5, 0.5])
        np.testing.assert_allclose(l2_distance(a, b), [0.5 * np.sqrt(12)] * 2)
