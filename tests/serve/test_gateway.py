"""Tests for the continuous-batching serving gateway.

Covers the gateway's acceptance bar from three sides:

* **determinism** — same seed + offered load ⇒ byte-identical latency
  histograms, across repeated runs and across ``REPRO_REPLAY_THREADS``;
* **admission accounting** — ``offered == admitted + shed`` with the shed
  reasons decided in documented order;
* **correctness under continuous batching** — real-execution logits are
  bit-identical between continuous batching, the static wave drainer and
  single-request eager forwards, and the simulated world-switch count
  matches what the real enclave boundary charges.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.models.simple import SimpleCNN, SimpleCNNConfig
from repro.serve.batching import InferenceRequest
from repro.serve.gateway import (
    AdmissionController,
    AdmissionPolicy,
    AutoscalerPolicy,
    EventLoop,
    GatewayPolicy,
    GatewayService,
    LatencyHistogram,
    ReplicaAutoscaler,
    SHED_REASONS,
    ServingGateway,
    StageCost,
    StageCostModel,
    poisson_workload,
    trace_workload,
)
from repro.utils.rng import set_global_seed


@pytest.fixture(autouse=True)
def _seed():
    set_global_seed(20230913)


def _model() -> SimpleCNN:
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=4, widths=(4, 8), image_size=8))


def _costs(secure_first: bool = True) -> StageCostModel:
    return StageCostModel(
        stages=[
            StageCost("stem", secure_first, base_us=50.0, per_sample_us=120.0,
                      input_nbytes_per_sample=4096),
            StageCost("trunk", False, base_us=30.0, per_sample_us=80.0,
                      input_nbytes_per_sample=2048),
        ]
    )


# --------------------------------------------------------------------------- #
# Event loop
# --------------------------------------------------------------------------- #
class TestEventLoop:
    def test_strict_time_then_fifo_order(self):
        loop = EventLoop()
        order = []
        loop.at(10.0, lambda: order.append("b"))
        loop.at(5.0, lambda: order.append("a"))
        loop.at(10.0, lambda: order.append("c"))
        assert loop.run() == 3
        assert order == ["a", "b", "c"]
        assert loop.now_us == 10.0

    def test_rejects_scheduling_in_the_past(self):
        loop = EventLoop(start_us=100.0)
        with pytest.raises(ValueError, match="already at"):
            loop.at(50.0, lambda: None)
        with pytest.raises(ValueError, match="non-negative"):
            loop.after(-1.0, lambda: None)

    def test_run_until_advances_the_clock_exactly(self):
        loop = EventLoop()
        loop.at(500.0, lambda: None)
        assert loop.run(until_us=200.0) == 0
        assert loop.now_us == 200.0
        assert loop.run() == 1
        assert loop.now_us == 500.0

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        seen = []
        loop.at(1.0, lambda: loop.after(1.0, lambda: seen.append(loop.now_us)))
        loop.run()
        assert seen == [2.0]


# --------------------------------------------------------------------------- #
# Latency histogram
# --------------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_quantiles_are_monotone_and_bounded(self):
        hist = LatencyHistogram()
        for value in [100.0, 200.0, 400.0, 800.0, 10_000.0]:
            hist.record(value)
        p = hist.percentiles()
        assert p["p50_us"] <= p["p90_us"] <= p["p99_us"] <= p["p999_us"] <= p["max_us"]
        assert p["max_us"] == 10_000.0
        assert p["mean_us"] == pytest.approx(2300.0)

    def test_quantile_error_bounded_by_bin_growth(self):
        hist = LatencyHistogram(bins_per_octave=8)
        for _ in range(1000):
            hist.record(5000.0)
        # The upper bin edge is at most one growth factor above the value.
        assert 5000.0 <= hist.quantile(0.99) <= 5000.0 * 2 ** (1 / 8)

    def test_digest_is_content_addressed(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in [10.0, 20.0, 30.0]:
            a.record(value)
            b.record(value)
        assert a.digest() == b.digest()
        b.record(40.0)
        assert a.digest() != b.digest()

    def test_merge_accumulates(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(100.0)
        b.record(900.0)
        a.merge(b)
        assert a.total == 2
        assert a.max_us == 900.0
        with pytest.raises(ValueError, match="bin layouts"):
            a.merge(LatencyHistogram(bins_per_octave=4))


# --------------------------------------------------------------------------- #
# Load generation
# --------------------------------------------------------------------------- #
class TestLoadGeneration:
    def test_poisson_is_seed_deterministic(self):
        a = poisson_workload(1000.0, requests=500, num_sessions=100, seed_name="t.a")
        b = poisson_workload(1000.0, requests=500, num_sessions=100, seed_name="t.a")
        c = poisson_workload(1000.0, requests=500, num_sessions=100, seed_name="t.b")
        np.testing.assert_array_equal(a.arrival_us, b.arrival_us)
        np.testing.assert_array_equal(a.session_index, b.session_index)
        assert not np.array_equal(a.arrival_us, c.arrival_us)

    def test_poisson_shape_and_rate(self):
        workload = poisson_workload(2000.0, requests=2000, num_sessions=50, seed_name="t.rate")
        assert len(workload) == 2000
        assert np.all(np.diff(workload.arrival_us) >= 0)
        assert workload.session_index.max() < 50
        # Mean inter-arrival within 10% of 1/rate over 2000 draws.
        mean_us = workload.horizon_us() / len(workload)
        assert mean_us == pytest.approx(500.0, rel=0.1)

    def test_poisson_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="rate_rps"):
            poisson_workload(0.0, requests=10, num_sessions=1)
        with pytest.raises(ValueError, match="requests"):
            poisson_workload(100.0, requests=0, num_sessions=1)

    def test_trace_from_array_and_file(self, tmp_path):
        arrivals = np.array([0.0, 100.0, 250.0, 600.0])
        from_array = trace_workload(arrivals, num_sessions=4, seed_name="t.trace")
        np.testing.assert_array_equal(from_array.arrival_us, arrivals)
        path = tmp_path / "trace.txt"
        path.write_text("# header\n0 1\n100 2\n250 1\n600 3\n")
        from_file = trace_workload(path)
        np.testing.assert_array_equal(from_file.arrival_us, arrivals)
        assert list(from_file.session_index) == [1, 2, 1, 3]
        assert from_file.num_sessions == 4

    def test_trace_rejects_disorder(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            trace_workload(np.array([0.0, 50.0, 25.0]))


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_decision_order(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=2, max_per_session=1))
        assert controller.offer("never-attested") == "unattested"
        controller.attest("a")
        controller.attest("b")
        controller.attest("c")
        assert controller.offer("a") is None
        assert controller.offer("a") == "session_quota"
        assert controller.offer("b") is None
        # Queue full is checked before the per-session quota.
        assert controller.offer("c") == "queue_full"
        assert set(controller.shed) <= set(SHED_REASONS)

    def test_offered_equals_admitted_plus_shed(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=3, max_per_session=2))
        controller.attest("s")
        for _ in range(10):
            controller.offer("s")
        assert controller.offered == controller.admitted + sum(controller.shed.values())

    def test_release_frees_quota_and_depth(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=8, max_per_session=1))
        controller.attest("s")
        assert controller.offer("s") is None
        assert controller.offer("s") == "session_quota"
        controller.release("s")
        assert controller.session_in_flight("s") == 0
        assert controller.offer("s") is None

    def test_release_without_admit_raises(self):
        controller = AdmissionController()
        with pytest.raises(ValueError, match="release"):
            controller.release("s")

    def test_attest_below_is_a_range_predicate(self):
        controller = AdmissionController()
        controller.attest_below(1000)
        assert controller.is_attested(0)
        assert controller.is_attested(999)
        assert not controller.is_attested(1000)
        assert not controller.is_attested(-1)
        assert not controller.is_attested(None)
        controller.attest("named")
        assert controller.is_attested("named")


# --------------------------------------------------------------------------- #
# Autoscaler
# --------------------------------------------------------------------------- #
class TestAutoscaler:
    _POLICY = AutoscalerPolicy(
        min_replicas=1, max_replicas=4, high_watermark=8.0, low_watermark=1.0,
        tick_us=1000.0, breach_ticks=2, cooldown_us=5000.0, startup_us=500.0,
    )

    def test_hysteresis_requires_consecutive_breaches(self):
        scaler = ReplicaAutoscaler(self._POLICY)
        assert scaler.evaluate(0.0, queue_depth=100, replicas=1) == 1
        assert scaler.evaluate(1000.0, queue_depth=100, replicas=1) == 2
        assert scaler.events[-1]["to"] == 2

    def test_cooldown_holds_after_acting(self):
        scaler = ReplicaAutoscaler(self._POLICY)
        scaler.evaluate(0.0, 100, 1)
        assert scaler.evaluate(1000.0, 100, 1) == 2
        # Still breaching, but inside the cooldown window: hold.
        assert scaler.evaluate(2000.0, 100, 2) == 2
        assert scaler.evaluate(3000.0, 100, 2) == 2

    def test_dead_band_never_scales(self):
        scaler = ReplicaAutoscaler(self._POLICY)
        for tick in range(10):
            assert scaler.evaluate(tick * 1000.0, queue_depth=4, replicas=2) == 2
        assert scaler.events == []

    def test_scale_down_at_low_watermark(self):
        scaler = ReplicaAutoscaler(self._POLICY)
        assert scaler.evaluate(0.0, 0, 3) == 3
        assert scaler.evaluate(1000.0, 0, 3) == 2

    def test_bounds_are_respected(self):
        scaler = ReplicaAutoscaler(self._POLICY)
        assert scaler.evaluate(0.0, 1000, 4) == 4
        assert scaler.evaluate(1000.0, 1000, 4) == 4  # already at max
        scaler = ReplicaAutoscaler(self._POLICY)
        assert scaler.evaluate(0.0, 0, 1) == 1
        assert scaler.evaluate(1000.0, 0, 1) == 1  # already at min


# --------------------------------------------------------------------------- #
# Stage cost model
# --------------------------------------------------------------------------- #
class TestStageCostModel:
    def test_crossings_charge_entry_and_exit_once(self):
        costs = _costs(secure_first=True)
        switches, _ = costs.stage_crossings(0, batch=4)
        assert switches == 1  # clear -> secure entry
        switches, _ = costs.stage_crossings(1, batch=4)
        assert switches == 0  # the exit is charged by exit_crossing, not here
        switches, _ = costs.exit_crossing(0, batch=4, output_nbytes_per_sample=2048)
        assert switches == 1
        assert costs.forward_crossings(4) == costs.forward_crossings(4)
        total_switches, _ = costs.forward_crossings(4)
        assert total_switches == 2  # one enter + one exit per forward

    def test_clear_partition_never_crosses(self):
        costs = _costs(secure_first=False)
        assert costs.forward_crossings(8) == (0, 0.0)
        assert costs.forward_us(8) == pytest.approx(
            sum(stage.service_us(8) for stage in costs.stages)
        )

    def test_capacity_scales_with_replicas(self):
        costs = _costs()
        assert costs.capacity_rps(2, 8) == pytest.approx(2 * costs.capacity_rps(1, 8))
        assert costs.capacity_rps(1, 8) > 0


# --------------------------------------------------------------------------- #
# Simulation: determinism, shedding, policy comparison
# --------------------------------------------------------------------------- #
class TestGatewaySimulation:
    def _workload(self, load: float = 0.9, requests: int = 2000):
        costs = _costs()
        capacity = costs.capacity_rps(2, 4)
        return costs, poisson_workload(
            rate_rps=load * capacity, requests=requests, num_sessions=1000,
            seed_name="gateway.test",
        )

    def _policy(self, policy: str = "continuous", **kwargs) -> GatewayPolicy:
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("replicas", 2)
        kwargs.setdefault("slo_us", 30_000.0)
        return GatewayPolicy(policy=policy, **kwargs)

    def test_repeated_runs_are_byte_identical(self):
        costs, workload = self._workload()
        digests = set()
        for _ in range(2):
            report = ServingGateway(costs, self._policy()).simulate(workload)
            digests.add(report.digest())
        assert len(digests) == 1

    def test_digest_is_invariant_to_replay_threads(self):
        """The virtual clock owes nothing to the host: REPRO_REPLAY_THREADS
        must not change a single histogram byte."""
        costs, workload = self._workload()
        digests = {}
        previous = os.environ.get("REPRO_REPLAY_THREADS")
        try:
            for threads in ("1", "4"):
                os.environ["REPRO_REPLAY_THREADS"] = threads
                report = ServingGateway(costs, self._policy()).simulate(workload)
                digests[threads] = report.digest()
        finally:
            if previous is None:
                os.environ.pop("REPRO_REPLAY_THREADS", None)
            else:
                os.environ["REPRO_REPLAY_THREADS"] = previous
        assert digests["1"] == digests["4"]

    def test_shed_accounting_conserves_requests(self):
        costs, workload = self._workload(load=1.5)
        policy = self._policy(admission=AdmissionPolicy(max_queue_depth=32, max_per_session=2))
        report = ServingGateway(costs, policy).simulate(workload, attested_fraction=0.9)
        metrics = report.metrics
        shed_total = sum(metrics["shed"].values())
        assert metrics["offered"] == len(workload)
        assert metrics["offered"] == metrics["admitted"] + shed_total
        assert metrics["completed"] == metrics["admitted"]
        assert metrics["shed"]["unattested"] > 0
        assert metrics["shed"].get("queue_full", 0) > 0

    def test_unattested_sessions_never_admit(self):
        costs, workload = self._workload(load=0.5, requests=200)
        report = ServingGateway(costs, self._policy()).simulate(workload, attested_fraction=0.0)
        assert report.metrics["admitted"] == 0
        assert report.metrics["shed"] == {"unattested": 200}

    def test_continuous_beats_static_p99_at_high_load(self):
        costs, workload = self._workload(load=0.95)
        continuous = ServingGateway(costs, self._policy("continuous")).simulate(workload)
        static = ServingGateway(costs, self._policy("static")).simulate(workload)
        assert continuous.percentiles()["p99_us"] <= static.percentiles()["p99_us"]
        assert continuous.metrics["continuous_joins"] > 0
        assert static.metrics["continuous_joins"] == 0

    def test_autoscaler_reacts_to_overload(self):
        costs, workload = self._workload(load=2.0, requests=3000)
        policy = self._policy(
            replicas=1,
            admission=AdmissionPolicy(max_queue_depth=4096, max_per_session=64),
            autoscaler=AutoscalerPolicy(
                min_replicas=1, max_replicas=4, high_watermark=8.0, low_watermark=0.5,
                tick_us=10_000.0, breach_ticks=2, cooldown_us=50_000.0, startup_us=20_000.0,
            ),
        )
        report = ServingGateway(costs, policy).simulate(workload)
        assert report.metrics["scale_events"], "overload never triggered a scale event"
        assert report.metrics["scale_events"][0]["to"] > report.metrics["scale_events"][0]["from"]
        assert report.replicas_final >= 1

    def test_report_shape(self):
        costs, workload = self._workload(load=0.5, requests=300)
        report = ServingGateway(costs, self._policy()).simulate(workload)
        payload = report.as_dict()
        assert payload["policy"] == "continuous"
        assert payload["capacity_rps"] > 0
        assert payload["metrics"]["latency"]["p99_us"] >= payload["metrics"]["latency"]["p50_us"]
        assert len(payload["stages"]) == 2

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            GatewayPolicy(policy="chaotic")


# --------------------------------------------------------------------------- #
# Real execution: logit parity and crossing accounting
# --------------------------------------------------------------------------- #
class TestGatewayServiceParity:
    def _requests(self, rng, count: int = 13) -> list[InferenceRequest]:
        inputs = rng.uniform(size=(count, 3, 8, 8))
        return [
            InferenceRequest(
                request_id=index,
                payload=inputs[index],
                arrival_us=index * 100.0,
                session_id="client",
            )
            for index in range(count)
        ]

    def _serve(self, model, requests, policy: str, **kwargs):
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("replicas", 2)
        kwargs.setdefault("admission", AdmissionPolicy(max_queue_depth=256, max_per_session=64))
        service = GatewayService(model, GatewayPolicy(policy=policy, **kwargs))
        service.open_session("client")
        return service, service.serve(requests)

    def test_continuous_equals_static_equals_eager(self, rng):
        model = _model()
        requests = self._requests(rng)
        _, continuous = self._serve(model, requests, "continuous")
        _, static = self._serve(model, requests, "static")
        # Single-request eager: max_batch=1 on one replica is exactly one
        # eager forward per query through the same partition.
        _, single = self._serve(model, requests, "continuous", max_batch=1, replicas=1)
        np.testing.assert_array_equal(continuous.logits(), static.logits())
        np.testing.assert_array_equal(continuous.logits(), single.logits())
        with no_grad():
            eager = np.stack(
                [model(Tensor(np.asarray(r.payload)[None], is_input=True)).data[0]
                 for r in requests]
            )
        np.testing.assert_array_equal(continuous.logits(), eager)
        assert [reply.request_id for reply in continuous.replies] == list(range(len(requests)))

    def test_simulated_switches_match_real_boundary(self, rng):
        model = _model()
        requests = self._requests(rng, count=12)
        for policy in ("continuous", "static"):
            service = GatewayService(model, GatewayPolicy(
                policy=policy, max_batch=4, replicas=2,
                admission=AdmissionPolicy(max_queue_depth=256, max_per_session=64),
            ))
            service.open_session("client")
            before = service.enclave.boundary.stats.switches
            report = service.serve(list(requests))
            real = service.enclave.boundary.stats.switches - before
            assert report.metrics["world_switches"] == real, (
                f"{policy}: simulated {report.metrics['world_switches']} switches, "
                f"boundary charged {real}"
            )
            # [secure stem, clear trunk]: one enter + one exit per cohort.
            assert real == 2 * report.metrics["batches"]

    def test_sealed_roundtrip_through_the_gateway(self, rng):
        model = _model()
        service = GatewayService(model, GatewayPolicy(policy="continuous", max_batch=4))
        session = service.open_session("client-a")
        payload = rng.uniform(size=(3, 8, 8))
        service.submit_sealed(0, session.seal_query(payload), arrival_us=0.0)
        report = service.serve()
        assert service.sealed_requests == 1
        reply = report.replies[0]
        assert reply.prediction == int(model.predict(payload[None])[0])
        sealed_reply = service.seal_reply(reply)
        opened = session.open_reply(sealed_reply)
        np.testing.assert_array_equal(opened, reply.logits)

    def test_unattested_sealed_query_is_shed_without_decryption(self, rng):
        model = _model()
        service = GatewayService(model, GatewayPolicy(policy="continuous"))
        session = service.open_session("client-a")
        service.submit_sealed(0, session.seal_query(rng.uniform(size=(3, 8, 8))))
        service.admission.revoke("client-a")
        report = service.serve()
        assert report.metrics["shed"] == {"unattested": 1}
        assert service.sealed_requests == 0, "a shed ciphertext was decrypted"
        assert report.replies == []

    def test_clear_gateway_serves_without_sessions(self, rng):
        model = _model()
        service = GatewayService(model, GatewayPolicy(policy="continuous", max_batch=4),
                                 shielded=False)
        inputs = rng.uniform(size=(6, 3, 8, 8))
        report = service.serve(
            [InferenceRequest(request_id=i, payload=inputs[i], arrival_us=i * 50.0)
             for i in range(6)]
        )
        np.testing.assert_array_equal(report.predictions(), model.predict(inputs))
        assert report.metrics["world_switches"] == 0
