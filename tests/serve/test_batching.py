"""Tests for the serving request queue and dynamic micro-batcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import BatchingPolicy, InferenceRequest, MicroBatcher, uniform_workload


def _request(index: int, arrival_us: float) -> InferenceRequest:
    return InferenceRequest(
        request_id=index, payload=np.full((3, 4, 4), float(index)), arrival_us=arrival_us
    )


class TestBatchingPolicy:
    def test_pad_schedule_is_powers_of_two_up_to_max(self):
        assert BatchingPolicy(max_batch=8).pad_schedule() == (1, 2, 4, 8)
        assert BatchingPolicy(max_batch=6).pad_schedule() == (1, 2, 4, 6)
        assert BatchingPolicy(max_batch=1).pad_schedule() == (1,)

    def test_padded_size_rounds_up(self):
        policy = BatchingPolicy(max_batch=8)
        assert policy.padded_size(3) == 4
        assert policy.padded_size(4) == 4
        assert policy.padded_size(5) == 8

    def test_padding_can_be_disabled(self):
        assert BatchingPolicy(max_batch=8, pad_batches=False).padded_size(5) == 5

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_us=-1.0)


class TestMicroBatcher:
    def test_cuts_at_max_batch(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=4, max_wait_us=1e9))
        for index in range(10):
            batcher.submit(_request(index, index * 10.0))
        batches = batcher.drain()
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert len(batcher) == 0
        # Capacity cut: the batch is ready when its last member arrived.
        assert batches[0].ready_us == 30.0

    def test_cuts_at_wait_budget(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=8, max_wait_us=100.0))
        batcher.submit(_request(0, 0.0))
        batcher.submit(_request(1, 50.0))
        batcher.submit(_request(2, 500.0))  # arrives after the head timed out
        batches = batcher.drain()
        assert [len(batch) for batch in batches] == [2, 1]
        # Timeout cut: the batch is ready at the head's deadline.
        assert batches[0].ready_us == 100.0
        assert batches[1].ready_us == 500.0

    def test_pads_to_schedule_by_repeating_last_sample(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch=8, max_wait_us=1e9))
        for index in range(5):
            batcher.submit(_request(index, 0.0))
        (batch,) = batcher.drain()
        assert batch.pad == 3
        assert batch.inputs.shape[0] == 8
        np.testing.assert_array_equal(batch.inputs[5], batch.inputs[4])

    def test_rejects_out_of_order_arrivals(self):
        batcher = MicroBatcher(BatchingPolicy())
        batcher.submit(_request(0, 100.0))
        with pytest.raises(ValueError, match="arrival order"):
            batcher.submit(_request(1, 50.0))

    def test_uniform_workload_spacing(self):
        inputs = np.zeros((3, 1, 2, 2))
        requests = uniform_workload(inputs, inter_arrival_us=250.0)
        assert [request.arrival_us for request in requests] == [0.0, 250.0, 500.0]
        assert [request.request_id for request in requests] == [0, 1, 2]
