"""End-to-end tests of the shielded inference serving runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.simple import SimpleCNN, SimpleCNNConfig
from repro.serve import (
    BatchingPolicy,
    ShieldedInferenceService,
    uniform_workload,
)
from repro.tee.errors import AttestationError, SecureChannelError


def _model() -> SimpleCNN:
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=4, widths=(4, 8), image_size=8))


@pytest.fixture()
def inputs(rng) -> np.ndarray:
    return rng.uniform(size=(21, 3, 8, 8))


def _serve(model, inputs, **kwargs):
    policy = kwargs.pop("policy", BatchingPolicy(max_batch=4, max_wait_us=2000.0))
    with ShieldedInferenceService(model, policy, **kwargs) as service:
        return service.serve(uniform_workload(inputs, inter_arrival_us=100.0))


class TestServingCorrectness:
    def test_replies_match_direct_prediction(self, inputs):
        model = _model()
        report = _serve(model, inputs)
        np.testing.assert_array_equal(report.predictions(), model.predict(inputs))
        assert [reply.request_id for reply in report.replies] == list(range(len(inputs)))

    def test_batched_equals_unbatched(self, inputs):
        model = _model()
        batched = _serve(model, inputs)
        single = _serve(model, inputs, policy=BatchingPolicy(max_batch=1))
        np.testing.assert_array_equal(batched.predictions(), single.predictions())

    def test_captured_is_bit_identical_to_eager(self, inputs):
        model = _model()
        captured = _serve(model, inputs, capture="captured")
        eager = _serve(model, inputs, capture="eager")
        np.testing.assert_array_equal(captured.logits(), eager.logits())
        assert captured.stats.capture.get("replays", 0) > 0

    def test_thread_workers_match_serial(self, inputs):
        model = _model()
        serial = _serve(model, inputs, backend="serial")
        threaded = _serve(model, inputs, backend="thread", max_workers=3)
        np.testing.assert_array_equal(serial.logits(), threaded.logits())
        assert threaded.stats.workers == 3

    def test_process_workers_match_serial(self, inputs):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        model = _model()
        serial = _serve(model, inputs, backend="serial")
        processed = _serve(model, inputs, backend="process", max_workers=2)
        np.testing.assert_array_equal(serial.logits(), processed.logits())


class TestWorldSwitchAccounting:
    def test_two_switches_per_batch(self, inputs):
        report = _serve(_model(), inputs)
        assert report.stats.world_switches_total == 2 * report.stats.batches
        assert report.stats.world_switches_per_request == pytest.approx(
            2.0 * report.stats.batches / len(inputs)
        )

    def test_captured_replays_charge_the_boundary(self, inputs):
        captured = _serve(_model(), inputs, capture="captured")
        eager = _serve(_model(), inputs, capture="eager")
        assert captured.stats.world_switches_total == eager.stats.world_switches_total
        assert captured.stats.boundary_time_us == pytest.approx(eager.stats.boundary_time_us)

    def test_unshielded_service_never_switches(self, inputs):
        report = _serve(_model(), inputs, shielded=False)
        assert report.stats.world_switches_total == 0
        assert report.partition == [
            {"stage": "stem", "secure": False},
            {"stage": "trunk", "secure": False},
        ]

    def test_shielded_partition_marks_the_stem(self, inputs):
        report = _serve(_model(), inputs)
        assert report.partition == [
            {"stage": "stem", "secure": True},
            {"stage": "trunk", "secure": False},
        ]


class TestSealedSessions:
    def test_sealed_query_roundtrip(self, rng):
        model = _model()
        with ShieldedInferenceService(model, BatchingPolicy(max_batch=4)) as service:
            session = service.open_session("client-a")
            payload = rng.uniform(size=(3, 8, 8))
            service.submit_sealed(0, session.seal_query(payload))
            report = service.serve()
            assert report.stats.sealed_requests == 1
            reply = report.replies[0]
            assert reply.prediction == int(model.predict(payload[None])[0])
            opened = session.open_reply(service.seal_reply(reply))
            np.testing.assert_array_equal(opened, reply.logits)

    def test_tampered_query_is_rejected(self, rng):
        from dataclasses import replace

        with ShieldedInferenceService(_model(), BatchingPolicy()) as service:
            session = service.open_session("client-b")
            sealed = session.seal_query(rng.uniform(size=(3, 8, 8)))
            bad = replace(
                sealed,
                message=replace(
                    sealed.message, ciphertext=b"\x00" + sealed.message.ciphertext[1:]
                ),
            )
            with pytest.raises(SecureChannelError):
                service.submit_sealed(0, bad)

    def test_unknown_session_is_rejected(self, rng):
        with ShieldedInferenceService(_model(), BatchingPolicy()) as service:
            session = service.open_session("client-c")
            sealed = session.seal_query(rng.uniform(size=(3, 8, 8)))
            service.sessions.close("client-c")
            with pytest.raises(AttestationError):
                service.submit_sealed(0, sealed)

    def test_duplicate_session_id_rejected(self):
        with ShieldedInferenceService(_model(), BatchingPolicy()) as service:
            service.open_session("client-d")
            with pytest.raises(AttestationError):
                service.open_session("client-d")

    def test_unshielded_service_has_no_sessions(self):
        with ShieldedInferenceService(_model(), BatchingPolicy(), shielded=False) as service:
            with pytest.raises(RuntimeError):
                service.open_session("client-e")


class TestServingStats:
    def test_throughput_and_latency_populated(self, inputs):
        report = _serve(_model(), inputs)
        stats = report.stats
        assert stats.requests == len(inputs)
        assert stats.throughput_rps > 0
        assert stats.latency_us_p50 > 0
        assert stats.latency_us_p99 >= stats.latency_us_p95 >= stats.latency_us_p50
        assert stats.mean_batch_size == pytest.approx(len(inputs) / stats.batches)

    def test_padding_is_counted(self, rng):
        # 23 requests at max_batch 4 → five full batches plus a 3-sample
        # remainder padded up to 4 — unless padding is disabled.
        model = _model()
        inputs = rng.uniform(size=(23, 3, 8, 8))
        padded = _serve(model, inputs)
        unpadded = _serve(
            model,
            inputs,
            policy=BatchingPolicy(max_batch=4, max_wait_us=2000.0, pad_batches=False),
        )
        assert padded.stats.padded_slots > 0
        assert unpadded.stats.padded_slots == 0
        np.testing.assert_array_equal(padded.predictions(), unpadded.predictions())
