"""Cross-module integration tests: the full PELTA story on tiny models.

These tests exercise the end-to-end pipeline the paper describes: an FL
deployment broadcasts a model, a compromised client probes its local copy
with white-box attacks, and PELTA's shielding degrades those attacks to
near-random effectiveness while leaving the model's task accuracy untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import PGD, RandomUniform, make_attacker_view
from repro.core import ShieldedModel, chain_rule_is_broken
from repro.eval import robust_accuracy, select_correctly_classified
from repro.tee import EnclaveAccessError


@pytest.mark.slow
class TestShieldingEndToEnd:
    def test_pgd_breaks_clear_model_but_not_shielded_model(self, trained_tiny_cnn, tiny_dataset):
        model = trained_tiny_cnn
        images, labels = select_correctly_classified(
            model.predict, tiny_dataset.test_images, tiny_dataset.test_labels, 20
        )
        assert len(labels) >= 10, "the shared tiny CNN should classify most test samples"
        attack = PGD(epsilon=0.08, step_size=0.02, steps=8)

        clear_adv = attack.run(make_attacker_view(model), images, labels).adversarials
        shielded = ShieldedModel(model)
        shielded_adv = attack.run(make_attacker_view(shielded), images, labels).adversarials

        clear_robust = robust_accuracy(model.predict, clear_adv, labels)
        shielded_robust = robust_accuracy(model.predict, shielded_adv, labels)
        # The Table III shape: white-box PGD is devastating, the shielded
        # attacker does clearly worse.
        assert clear_robust <= 0.5
        assert shielded_robust >= clear_robust + 0.3

    def test_shielded_attack_is_no_better_than_random_noise(self, trained_tiny_cnn, tiny_dataset):
        model = trained_tiny_cnn
        images, labels = select_correctly_classified(
            model.predict, tiny_dataset.test_images, tiny_dataset.test_labels, 20
        )
        epsilon = 0.08
        attack = PGD(epsilon=epsilon, step_size=0.02, steps=8)
        noise = RandomUniform(epsilon=epsilon)
        shielded = ShieldedModel(model)
        shielded_adv = attack.run(make_attacker_view(shielded), images, labels).adversarials
        noise_adv = noise.run(make_attacker_view(model), images, labels).adversarials
        shielded_robust = robust_accuracy(model.predict, shielded_adv, labels)
        noise_robust = robust_accuracy(model.predict, noise_adv, labels)
        # The shielded attacker is comparable to (not much better than) noise.
        assert shielded_robust >= noise_robust - 0.25

    def test_shielding_preserves_task_accuracy_exactly(self, trained_tiny_cnn, tiny_dataset):
        model = trained_tiny_cnn
        shielded = ShieldedModel(model)
        np.testing.assert_array_equal(
            shielded.predict(tiny_dataset.test_images), model.predict(tiny_dataset.test_images)
        )

    def test_shield_report_breaks_chain_rule_on_real_model(self, trained_tiny_cnn, tiny_dataset):
        from repro.autodiff import GraphSnapshot, Tensor
        from repro.autodiff import functional as F
        from repro.core.selection import select_shield_tagged
        from repro.core.shielding import pelta_shield

        model = trained_tiny_cnn
        shielded = ShieldedModel(model)
        inputs = Tensor(
            tiny_dataset.test_images[:2], requires_grad=True, is_input=True, name="input"
        )
        logits = shielded(inputs)
        loss = F.cross_entropy(logits, tiny_dataset.test_labels[:2], reduction="sum")
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_shield_tagged(graph))
        assert chain_rule_is_broken(graph, report)

    def test_attacker_cannot_read_shielded_quantities(self, trained_tiny_cnn, tiny_dataset):
        shielded = ShieldedModel(trained_tiny_cnn)
        view = make_attacker_view(shielded)
        with pytest.raises(EnclaveAccessError):
            view.true_input_gradient(tiny_dataset.test_images[:2], tiny_dataset.test_labels[:2])
        for key in shielded.enclave.sealed_keys():
            with pytest.raises(EnclaveAccessError):
                shielded.enclave.unseal(key)

    def test_enclave_usage_fits_trustzone_budget(self, trained_tiny_cnn, tiny_dataset):
        shielded = ShieldedModel(trained_tiny_cnn)
        view = make_attacker_view(shielded)
        view.gradient(tiny_dataset.test_images[:4], tiny_dataset.test_labels[:4])
        assert shielded.enclave.used_bytes < shielded.enclave.memory_limit_bytes
        shielded.enclave.check_capacity()  # must not raise


@pytest.mark.slow
class TestVitShielding:
    def test_vit_frontier_upsampling_is_weak(self, trained_tiny_vit, tiny_dataset):
        model = trained_tiny_vit
        images, labels = select_correctly_classified(
            model.predict, tiny_dataset.test_images, tiny_dataset.test_labels, 16
        )
        if len(labels) < 8:
            pytest.skip("tiny ViT did not learn enough correctly classified samples")
        attack = PGD(epsilon=0.08, step_size=0.02, steps=8)
        clear = robust_accuracy(
            model.predict, attack.run(make_attacker_view(model), images, labels).adversarials, labels
        )
        shielded_view = make_attacker_view(ShieldedModel(model))
        shielded = robust_accuracy(
            model.predict, attack.run(shielded_view, images, labels).adversarials, labels
        )
        assert shielded >= clear
