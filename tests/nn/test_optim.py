"""Tests for the SGD and Adam optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import SGD, Adam, Linear, Parameter
from repro.nn.optim import Optimizer


def _quadratic_step(parameter: Parameter) -> None:
    """Populate the gradient of ``0.5 * ||p - 3||^2`` by hand."""
    parameter.grad = parameter.data - 3.0


class TestSGD:
    def test_moves_towards_minimum(self):
        parameter = Parameter(np.zeros(4))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            _quadratic_step(parameter)
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates_convergence(self):
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        sgd_plain = SGD([plain], lr=0.05)
        sgd_momentum = SGD([momentum], lr=0.05, momentum=0.9)
        for _ in range(20):
            _quadratic_step(plain)
            sgd_plain.step()
            _quadratic_step(momentum)
            sgd_momentum.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.full(3, 10.0))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(3)
        optimizer.step()
        assert np.all(np.abs(parameter.data) < 10.0)

    def test_skips_parameters_without_gradients(self):
        parameter = Parameter(np.ones(2))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient: should be a no-op, not an error
        np.testing.assert_allclose(parameter.data, np.ones(2))

    def test_zero_grad(self):
        parameter = Parameter(np.ones(2))
        parameter.grad = np.ones(2)
        SGD([parameter], lr=0.1).zero_grad()
        assert parameter.grad is None

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_moves_towards_minimum(self):
        parameter = Parameter(np.zeros(4))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            _quadratic_step(parameter)
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=1e-2)

    def test_reduces_loss_of_small_network(self, rng):
        layer = Linear(4, 1)
        optimizer = Adam(layer.parameters(), lr=0.02)
        inputs = rng.normal(size=(64, 4))
        targets = inputs @ np.array([[1.0], [-2.0], [0.5], [3.0]])

        def loss_value() -> float:
            prediction = layer(Tensor(inputs))
            return float(((prediction.data - targets) ** 2).mean())

        initial = loss_value()
        for _ in range(250):
            optimizer.zero_grad()
            prediction = layer(Tensor(inputs))
            diff = prediction - Tensor(targets)
            (diff * diff).mean().backward()
            optimizer.step()
        assert loss_value() < 0.2 * initial

    def test_weight_decay(self):
        parameter = Parameter(np.full(2, 5.0))
        optimizer = Adam([parameter], lr=0.1, weight_decay=1.0)
        parameter.grad = np.zeros(2)
        optimizer.step()
        assert np.all(parameter.data < 5.0)

    def test_base_class_step_not_implemented(self):
        optimizer = Optimizer([Parameter(np.ones(1))])
        with pytest.raises(NotImplementedError):
            optimizer.step()
