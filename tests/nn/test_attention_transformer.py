"""Tests for attention, transformer blocks, embeddings and the trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, numerical_gradient, relative_error
from repro.nn import (
    ClassToken,
    MLPBlock,
    MultiHeadSelfAttention,
    PatchEmbedding,
    PositionalEmbedding,
    TransformerEncoderBlock,
)
from repro.nn.trainer import TrainingHistory, fit_classifier, make_optimizer
from repro.models.simple import MLPClassifier

TOL = 1e-5


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attention = MultiHeadSelfAttention(dim=16, num_heads=4)
        out = attention(Tensor(rng.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_attention_weights_are_stored_and_normalised(self, rng):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2)
        attention(Tensor(rng.normal(size=(3, 5, 8))))
        weights = attention.last_attention_weights
        assert weights.shape == (3, 2, 5, 5)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-9)

    def test_gradient(self, rng):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2)
        x0 = rng.normal(size=(2, 4, 8))
        probe = rng.normal(size=(2, 4, 8))
        tensor = Tensor(x0.copy(), requires_grad=True)
        attention(tensor).backward(probe)
        numeric = numerical_gradient(
            lambda a: float((attention(Tensor(a)).data * probe).sum()), x0.copy()
        )
        assert relative_error(tensor.grad, numeric) < TOL


class TestTransformerBlocks:
    def test_mlp_block_shape(self, rng):
        block = MLPBlock(dim=12, hidden_dim=24)
        assert block(Tensor(rng.normal(size=(2, 5, 12)))).shape == (2, 5, 12)

    def test_encoder_block_preserves_shape(self, rng):
        block = TransformerEncoderBlock(dim=16, num_heads=4)
        assert block(Tensor(rng.normal(size=(2, 5, 16)))).shape == (2, 5, 16)

    def test_encoder_block_is_residual(self, rng):
        """Zeroing the block's final projections must make it the identity."""
        block = TransformerEncoderBlock(dim=8, num_heads=2)
        block.attention.proj.weight.data[:] = 0.0
        block.attention.proj.bias.data[:] = 0.0
        block.mlp.fc2.weight.data[:] = 0.0
        block.mlp.fc2.bias.data[:] = 0.0
        x = rng.normal(size=(1, 3, 8))
        np.testing.assert_allclose(block(Tensor(x)).data, x, atol=1e-12)


class TestEmbeddings:
    def test_patchify_shape_and_content(self, rng):
        embed = PatchEmbedding(image_size=8, patch_size=4, in_channels=3, dim=16)
        x = rng.normal(size=(2, 3, 8, 8))
        patches = embed.patchify(Tensor(x))
        assert patches.shape == (2, 4, 48)
        # First patch must be the top-left 4x4 block of every channel.
        expected = x[0, :, :4, :4].reshape(-1)
        np.testing.assert_allclose(patches.data[0, 0], expected)

    def test_patch_embedding_output_shape(self, rng):
        embed = PatchEmbedding(image_size=8, patch_size=2, in_channels=3, dim=10)
        assert embed(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 16, 10)

    def test_patch_size_must_divide_image(self):
        with pytest.raises(ValueError):
            PatchEmbedding(image_size=9, patch_size=4, in_channels=3, dim=8)

    def test_class_token_prepends(self, rng):
        token = ClassToken(dim=6)
        out = token(Tensor(rng.normal(size=(3, 4, 6))))
        assert out.shape == (3, 5, 6)
        np.testing.assert_allclose(out.data[0, 0], token.token.data[0, 0])

    def test_positional_embedding_adds(self, rng):
        positional = PositionalEmbedding(sequence_length=5, dim=6)
        tokens = rng.normal(size=(2, 5, 6))
        out = positional(Tensor(tokens))
        np.testing.assert_allclose(out.data, tokens + positional.embedding.data)

    def test_positional_embedding_length_mismatch(self, rng):
        positional = PositionalEmbedding(sequence_length=5, dim=6)
        with pytest.raises(ValueError):
            positional(Tensor(rng.normal(size=(2, 4, 6))))


class TestTrainer:
    def test_fit_reduces_loss_and_reaches_high_accuracy(self, rng):
        points = rng.normal(size=(120, 1, 1, 2))
        labels = (points[:, 0, 0, 0] > 0).astype(np.int64)
        model = MLPClassifier(input_dim=2, num_classes=2, hidden_dim=16, input_shape=(1, 1, 2))
        history = fit_classifier(model, points, labels, epochs=12, batch_size=32, lr=5e-3)
        assert history.losses[-1] < history.losses[0]
        assert history.final_accuracy > 0.9
        assert not model.training  # fit leaves the model in eval mode

    def test_make_optimizer_variants(self):
        model = MLPClassifier(input_dim=2, num_classes=2)
        assert make_optimizer(model, "adam").parameters
        assert make_optimizer(model, "sgd", lr=0.1).lr == 0.1
        with pytest.raises(ValueError):
            make_optimizer(model, "bogus")

    def test_empty_history_defaults(self):
        history = TrainingHistory()
        assert np.isnan(history.final_loss)
        assert np.isnan(history.final_accuracy)
