"""Tests for the Module / Parameter / Sequential abstractions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Module, Parameter, ReLU, Sequential
from repro.nn.layers import BatchNorm2d


class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8)
        self.second = Linear(8, 2)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestParameterRegistration:
    def test_parameters_are_collected_recursively(self):
        model = _TwoLayer()
        names = {name for name, _ in model.named_parameters()}
        assert names == {
            "first.weight",
            "first.bias",
            "second.weight",
            "second.bias",
            "scale",
        }

    def test_parameter_flags(self):
        parameter = Parameter(np.ones(3), name="p")
        assert parameter.requires_grad
        assert parameter.is_parameter
        assert parameter.op == "parameter"

    def test_num_parameters_and_bytes(self):
        model = _TwoLayer()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.num_parameters() == expected
        assert model.parameter_nbytes() == expected * 8  # float64

    def test_modules_enumeration(self):
        model = _TwoLayer()
        assert len(model.modules()) == 3  # self + two Linear layers


class TestTrainingHelpers:
    def test_zero_grad_clears_gradients(self):
        model = _TwoLayer()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), ReLU())
        model.eval()
        assert not model.training
        assert all(not module.training for module in model.modules())
        model.train()
        assert model.training


class TestStateDict:
    def test_roundtrip(self):
        source = _TwoLayer()
        target = _TwoLayer()
        target.load_state_dict(source.state_dict())
        for (name_a, param_a), (name_b, param_b) in zip(
            source.named_parameters(), target.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_state_dict_is_a_copy(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.allclose(model.first.weight.data, 0.0)

    def test_unknown_parameter_raises(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["bogus"] = np.ones(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.ones((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffers_roundtrip(self):
        bn_source = BatchNorm2d(3)
        bn_source.update_buffer("running_mean", np.array([1.0, 2.0, 3.0]))
        bn_target = BatchNorm2d(3)
        bn_target.load_state_dict(bn_source.state_dict())
        np.testing.assert_allclose(bn_target.running_mean, [1.0, 2.0, 3.0])

    def test_unknown_buffer_raises(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        state["buffer::bogus"] = np.ones(3)
        with pytest.raises(KeyError):
            bn.load_state_dict(state)


class TestSequential:
    def test_applies_in_order(self):
        model = Sequential(Linear(3, 5), ReLU(), Linear(5, 2))
        out = model(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)

    def test_len_iter_getitem(self):
        layers = [Linear(2, 2), ReLU()]
        model = Sequential(*layers)
        assert len(model) == 2
        assert list(model) == layers
        assert model[0] is layers[0]

    def test_append_registers_parameters(self):
        model = Sequential(Linear(2, 2))
        before = len(model.parameters())
        model.append(Linear(2, 2))
        assert len(model.parameters()) == before + 2
