"""Shape and gradient tests for the layer library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, numerical_gradient, relative_error
from repro.nn import (
    GELU,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    GroupNorm,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    WSConv2d,
    ZeroPad2d,
)

TOL = 1e-5


def _layer_grad_check(layer, x0, tol=TOL):
    probe = {}

    def scalar(a):
        out = layer(Tensor(a))
        if "p" not in probe:
            probe["p"] = np.random.default_rng(11).normal(size=out.shape)
        return float((out.data * probe["p"]).sum())

    tensor = Tensor(x0.copy(), requires_grad=True)
    out = layer(tensor)
    if "p" not in probe:
        probe["p"] = np.random.default_rng(11).normal(size=out.shape)
    out.backward(probe["p"])
    numeric = numerical_gradient(scalar, x0.copy())
    assert relative_error(tensor.grad, numeric) < tol


class TestLinear:
    def test_output_shape_2d(self, rng):
        assert Linear(6, 3)(Tensor(rng.normal(size=(4, 6)))).shape == (4, 3)

    def test_output_shape_3d(self, rng):
        assert Linear(6, 3)(Tensor(rng.normal(size=(2, 5, 6)))).shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradient(self, rng):
        _layer_grad_check(Linear(5, 3), rng.normal(size=(4, 5)))

    def test_parameter_gradients_flow(self, rng):
        layer = Linear(3, 2)
        layer(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConvLayers:
    def test_conv_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_conv_gradient(self, rng):
        _layer_grad_check(Conv2d(2, 4, 3, padding=1), rng.normal(size=(2, 2, 5, 5)))

    def test_wsconv_weight_is_standardised(self, rng):
        layer = WSConv2d(3, 4, 3, padding=1)
        # Forward with a probe input and inspect that the effective kernel used
        # has (approximately) zero mean per output channel by checking the
        # output is invariant to adding a constant to the raw weight.
        x = Tensor(rng.normal(size=(1, 3, 6, 6)))
        baseline = layer(x).data.copy()
        layer.weight.data = layer.weight.data + 5.0  # constant shift
        shifted = layer(x).data
        np.testing.assert_allclose(baseline, shifted, atol=1e-8)

    def test_wsconv_gradient(self, rng):
        _layer_grad_check(WSConv2d(2, 3, 3, padding=1), rng.normal(size=(1, 2, 5, 5)))

    def test_zero_pad(self, rng):
        out = ZeroPad2d(2)(Tensor(rng.normal(size=(1, 3, 4, 4))))
        assert out.shape == (1, 3, 8, 8)
        np.testing.assert_allclose(out.data[:, :, :2, :], 0.0)


class TestNormalisation:
    def test_layernorm_normalises_last_dim(self, rng):
        out = LayerNorm(16)(Tensor(rng.normal(size=(4, 16)) * 5 + 3)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradient(self, rng):
        _layer_grad_check(LayerNorm(8), rng.normal(size=(3, 8)))

    def test_batchnorm_train_normalises_batch(self, rng):
        layer = BatchNorm2d(3)
        out = layer(Tensor(rng.normal(size=(8, 3, 4, 4)) * 3 + 1)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_batchnorm_updates_running_stats(self, rng):
        layer = BatchNorm2d(3)
        before = layer.running_mean.copy()
        layer(Tensor(rng.normal(size=(8, 3, 4, 4)) + 2.0))
        assert not np.allclose(layer.running_mean, before)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(3)
        layer(Tensor(rng.normal(size=(8, 3, 4, 4))))
        layer.eval()
        x = rng.normal(size=(2, 3, 4, 4))
        out1 = layer(Tensor(x)).data
        out2 = layer(Tensor(x)).data
        np.testing.assert_allclose(out1, out2)

    def test_groupnorm_requires_divisible_channels(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_groupnorm_gradient(self, rng):
        _layer_grad_check(GroupNorm(2, 4), rng.normal(size=(2, 4, 3, 3)))


class TestActivationsAndPooling:
    @pytest.mark.parametrize(
        "layer", [ReLU(), GELU(), Sigmoid(), Tanh(), Softmax(axis=-1)],
        ids=["relu", "gelu", "sigmoid", "tanh", "softmax"],
    )
    def test_activation_shapes(self, layer, rng):
        x = rng.normal(size=(3, 7))
        assert layer(Tensor(x)).shape == (3, 7)

    def test_max_and_avg_pool_layers(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        assert MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert AvgPool2d(4)(x).shape == (2, 3, 2, 2)

    def test_global_avg_pool_layer(self, rng):
        assert GlobalAvgPool2d()(Tensor(rng.normal(size=(2, 5, 4, 4)))).shape == (2, 5)

    def test_flatten(self, rng):
        assert Flatten()(Tensor(rng.normal(size=(2, 3, 4, 4)))).shape == (2, 48)

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_dropout_train_zeroes_some_entries(self, rng):
        layer = Dropout(0.5)
        out = layer(Tensor(np.ones((20, 20)))).data
        assert (out == 0.0).sum() > 0
