"""Tests for the defender model zoo (ViT, ResNet-v2, BiT, SimpleCNN, MLP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.models import (
    BiTConfig,
    BiTModel,
    MLPClassifier,
    ResNetConfig,
    ResNetV2,
    SimpleCNN,
    SimpleCNNConfig,
    ViTConfig,
    VisionTransformer,
    build_model,
    list_models,
    paper_spec,
)
from repro.models.paper_configs import PAPER_MODEL_SPECS


def _tiny_vit(num_classes: int = 3) -> VisionTransformer:
    return VisionTransformer(
        ViTConfig(
            image_size=8, patch_size=4, in_channels=3, num_classes=num_classes,
            dim=12, depth=2, num_heads=2,
        )
    )


def _tiny_resnet(num_classes: int = 3) -> ResNetV2:
    return ResNetV2(
        ResNetConfig(
            in_channels=3, num_classes=num_classes, stage_widths=(4, 8),
            blocks_per_stage=1, image_size=8,
        )
    )


def _tiny_bit(num_classes: int = 3) -> BiTModel:
    return BiTModel(
        BiTConfig(
            in_channels=3, num_classes=num_classes, stage_widths=(4, 8),
            blocks_per_stage=1, width_factor=1, num_groups=2, image_size=8,
        )
    )


class TestVisionTransformer:
    def test_forward_shape(self, rng):
        model = _tiny_vit()
        out = model(Tensor(rng.uniform(size=(2, 3, 8, 8))))
        assert out.shape == (2, 3)

    def test_stem_output_is_token_sequence(self, rng):
        model = _tiny_vit()
        hidden = model.forward_stem(Tensor(rng.uniform(size=(2, 3, 8, 8))))
        assert hidden.shape == (2, model.config.sequence_length, model.config.dim)

    def test_forward_equals_stem_plus_trunk(self, rng):
        model = _tiny_vit()
        x = Tensor(rng.uniform(size=(2, 3, 8, 8)))
        full = model(x).data
        split = model.forward_trunk(model.forward_stem(x)).data
        np.testing.assert_allclose(full, split)

    def test_stem_parameters_are_embedding_parameters(self):
        model = _tiny_vit()
        stem_names = {id(p) for p in model.stem_parameters()}
        expected = {
            id(model.patch_embedding.projection),
            id(model.patch_embedding.bias),
            id(model.class_token.token),
            id(model.position_embedding.embedding),
        }
        assert stem_names == expected

    def test_attention_maps_available_after_forward(self, rng):
        model = _tiny_vit()
        assert model.attention_maps() == []
        model(Tensor(rng.uniform(size=(2, 3, 8, 8))))
        maps = model.attention_maps()
        assert len(maps) == model.config.depth
        assert maps[0].shape == (2, 2, model.config.sequence_length, model.config.sequence_length)

    def test_family_and_description(self):
        model = _tiny_vit()
        assert model.family == "vit"
        assert "position embedding" in model.stem_description


class TestResNetAndBiT:
    @pytest.mark.parametrize("factory", [_tiny_resnet, _tiny_bit], ids=["resnet", "bit"])
    def test_forward_shape(self, factory, rng):
        model = factory()
        out = model(Tensor(rng.uniform(size=(2, 3, 8, 8))))
        assert out.shape == (2, 3)

    @pytest.mark.parametrize("factory", [_tiny_resnet, _tiny_bit], ids=["resnet", "bit"])
    def test_forward_equals_stem_plus_trunk(self, factory, rng):
        model = factory()
        model.eval()
        x = Tensor(rng.uniform(size=(2, 3, 8, 8)))
        np.testing.assert_allclose(
            model(x).data, model.forward_trunk(model.forward_stem(x)).data
        )

    def test_resnet_stem_is_conv_bn(self):
        model = _tiny_resnet()
        stem_parameters = model.stem_parameters()
        assert {id(p) for p in stem_parameters} == {
            id(model.stem_conv.weight),
            id(model.stem_conv.bias),
            id(model.stem_bn.weight),
            id(model.stem_bn.bias),
        }

    def test_bit_stem_is_first_wsconv(self):
        model = _tiny_bit()
        assert {id(p) for p in model.stem_parameters()} == {id(model.stem_conv.weight)}

    def test_bit_stem_output_spatial_size_preserved(self, rng):
        model = _tiny_bit()
        hidden = model.forward_stem(Tensor(rng.uniform(size=(1, 3, 8, 8))))
        assert hidden.shape[2:] == (8, 8)

    def test_families(self):
        assert _tiny_resnet().family == "resnet"
        assert _tiny_bit().family == "bit"

    def test_gradients_flow_to_input(self, rng):
        model = _tiny_bit()
        x = Tensor(rng.uniform(size=(1, 3, 8, 8)), requires_grad=True, is_input=True)
        model(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()


class TestSimpleModels:
    def test_simple_cnn_shapes(self, rng):
        model = SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=5, widths=(4, 8), image_size=8))
        assert model(Tensor(rng.uniform(size=(2, 3, 8, 8)))).shape == (2, 5)

    def test_mlp_shapes(self, rng):
        model = MLPClassifier(input_dim=12, num_classes=3, hidden_dim=8, input_shape=(3, 2, 2))
        assert model(Tensor(rng.uniform(size=(4, 3, 2, 2)))).shape == (4, 3)

    def test_predict_and_accuracy(self, rng):
        model = MLPClassifier(input_dim=4, num_classes=2, hidden_dim=8, input_shape=(1, 2, 2))
        inputs = rng.uniform(size=(10, 1, 2, 2))
        predictions = model.predict(inputs)
        assert predictions.shape == (10,)
        accuracy = model.accuracy(inputs, predictions)
        assert accuracy == 1.0


class TestRegistryAndPaperConfigs:
    def test_every_paper_model_is_registered(self):
        names = list_models()
        for expected in (
            "vit_l16", "vit_b16", "vit_b32", "resnet56", "resnet164",
            "bit_m_r101x3", "bit_m_r152x4",
        ):
            assert expected in names

    def test_build_model_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("not_a_model", num_classes=2)

    @pytest.mark.parametrize("name", ["vit_b32", "resnet56", "bit_m_r101x3", "simple_cnn", "mlp"])
    def test_build_model_forward(self, name, rng):
        model = build_model(name, num_classes=3, image_size=16)
        out = model(Tensor(rng.uniform(size=(2, 3, 16, 16))))
        assert out.shape == (2, 3)

    def test_paper_specs_cover_table1(self):
        assert set(PAPER_MODEL_SPECS) == {"vit_l16", "vit_b16", "bit_m_r101x3", "bit_m_r152x4"}

    def test_paper_spec_lookup(self):
        spec = paper_spec("vit_l16")
        assert spec.dim == 1024
        assert spec.num_patches == (224 // 16) ** 2
        with pytest.raises(KeyError):
            paper_spec("unknown")
