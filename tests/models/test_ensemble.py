"""Tests for the random-selection ensemble defender."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.ensemble import RandomSelectionEnsemble
from repro.models.simple import MLPClassifier


class _ConstantModel(MLPClassifier):
    """A classifier that always predicts a fixed class (for routing tests)."""

    def __init__(self, constant: int, num_classes: int = 3):
        super().__init__(input_dim=4, num_classes=num_classes, hidden_dim=4, input_shape=(1, 2, 2))
        self.constant = constant

    def predict(self, inputs):  # type: ignore[override]
        return np.full(len(inputs), self.constant, dtype=np.int64)


class TestRandomSelectionEnsemble:
    def test_requires_two_members(self):
        with pytest.raises(ValueError):
            RandomSelectionEnsemble([_ConstantModel(0)])

    def test_selection_routing(self, rng):
        ensemble = RandomSelectionEnsemble([_ConstantModel(0), _ConstantModel(1)])
        inputs = rng.uniform(size=(6, 1, 2, 2))
        selection = np.array([0, 1, 0, 1, 0, 1])
        predictions = ensemble.predict(inputs, selection)
        np.testing.assert_array_equal(predictions, selection)

    def test_select_members_distribution(self):
        ensemble = RandomSelectionEnsemble([_ConstantModel(0), _ConstantModel(1)])
        selection = ensemble.select_members(400)
        assert set(np.unique(selection)) <= {0, 1}
        # Both members should be picked a non-trivial number of times.
        assert 100 < selection.sum() < 300

    def test_predict_per_member(self, rng):
        ensemble = RandomSelectionEnsemble([_ConstantModel(0), _ConstantModel(2)])
        per_member = ensemble.predict_per_member(rng.uniform(size=(5, 1, 2, 2)))
        assert per_member.shape == (2, 5)
        assert np.all(per_member[0] == 0)
        assert np.all(per_member[1] == 2)

    def test_accuracy_with_agreeing_members(self, rng):
        ensemble = RandomSelectionEnsemble([_ConstantModel(1), _ConstantModel(1)])
        inputs = rng.uniform(size=(10, 1, 2, 2))
        labels = np.ones(10, dtype=np.int64)
        assert ensemble.accuracy(inputs, labels) == 1.0

    def test_accuracy_with_fixed_selection(self, rng):
        ensemble = RandomSelectionEnsemble([_ConstantModel(0), _ConstantModel(1)])
        inputs = rng.uniform(size=(4, 1, 2, 2))
        labels = np.array([0, 0, 0, 0])
        assert ensemble.accuracy(inputs, labels, selection=np.zeros(4, dtype=int)) == 1.0
        assert ensemble.accuracy(inputs, labels, selection=np.ones(4, dtype=int)) == 0.0

    def test_member_names(self):
        ensemble = RandomSelectionEnsemble([_ConstantModel(0), _ConstantModel(1)])
        assert ensemble.member_names() == ["_ConstantModel", "_ConstantModel"]
        assert len(ensemble) == 2
