"""Invariant tests shared by every ε-bounded attack (plus hypothesis properties)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    APGD,
    FGSM,
    MIM,
    PGD,
    CarliniWagner,
    RandomUniform,
    project_linf,
)
from repro.core.views import FullWhiteBoxView
from repro.models.simple import MLPClassifier
from repro.nn.trainer import fit_classifier
from repro.utils.rng import spawn_rng

EPSILON = 0.1


@pytest.fixture(scope="module")
def toy_view():
    """A trained 2-feature classifier wrapped in a full white-box view."""
    rng = spawn_rng("tests.attacks.toy")
    points = rng.uniform(size=(160, 1, 1, 8))
    labels = (points[:, 0, 0, :4].sum(axis=1) > points[:, 0, 0, 4:].sum(axis=1)).astype(np.int64)
    model = MLPClassifier(input_dim=8, num_classes=2, hidden_dim=16, input_shape=(1, 1, 8))
    fit_classifier(model, points, labels, epochs=15, batch_size=32, lr=5e-3)
    view = FullWhiteBoxView(model)
    correct = model.predict(points) == labels
    return view, points[correct][:24], labels[correct][:24]


_EPS_BOUNDED_ATTACKS = [
    FGSM(epsilon=EPSILON),
    PGD(epsilon=EPSILON, step_size=EPSILON / 5, steps=6),
    PGD(epsilon=EPSILON, step_size=EPSILON / 5, steps=6, random_start=True),
    MIM(epsilon=EPSILON, step_size=EPSILON / 5, steps=6),
    APGD(epsilon=EPSILON, steps=8),
    RandomUniform(epsilon=EPSILON),
]
_IDS = ["fgsm", "pgd", "pgd_random_start", "mim", "apgd", "random"]


class TestEpsilonBallInvariants:
    @pytest.mark.parametrize("attack", _EPS_BOUNDED_ATTACKS, ids=_IDS)
    def test_perturbation_stays_in_ball_and_pixel_range(self, attack, toy_view):
        view, inputs, labels = toy_view
        result = attack.run(view, inputs, labels)
        assert result.adversarials.shape == inputs.shape
        assert np.all(result.linf_norms() <= EPSILON + 1e-9)
        assert result.adversarials.min() >= 0.0
        assert result.adversarials.max() <= 1.0

    @pytest.mark.parametrize("attack", _EPS_BOUNDED_ATTACKS, ids=_IDS)
    def test_originals_are_not_modified(self, attack, toy_view):
        view, inputs, labels = toy_view
        before = inputs.copy()
        attack.run(view, inputs, labels)
        np.testing.assert_array_equal(inputs, before)

    def test_gradient_attacks_beat_random_noise(self, toy_view):
        """Gradient-following attacks must increase the loss more than noise."""
        view, inputs, labels = toy_view
        pgd = PGD(epsilon=EPSILON, step_size=EPSILON / 5, steps=8)
        random_attack = RandomUniform(epsilon=EPSILON)
        pgd_loss = view.loss(pgd.run(view, inputs, labels).adversarials, labels).mean()
        noise_loss = view.loss(random_attack.run(view, inputs, labels).adversarials, labels).mean()
        clean_loss = view.loss(inputs, labels).mean()
        assert pgd_loss > clean_loss
        assert pgd_loss > noise_loss

    def test_pgd_increases_loss_monotonically_with_steps(self, toy_view):
        view, inputs, labels = toy_view
        few = PGD(epsilon=EPSILON, step_size=EPSILON / 10, steps=2)
        many = PGD(epsilon=EPSILON, step_size=EPSILON / 10, steps=12)
        few_loss = view.loss(few.run(view, inputs, labels).adversarials, labels).mean()
        many_loss = view.loss(many.run(view, inputs, labels).adversarials, labels).mean()
        assert many_loss >= few_loss - 1e-9

    def test_mim_momentum_changes_result(self, toy_view):
        view, inputs, labels = toy_view
        with_momentum = MIM(epsilon=EPSILON, step_size=EPSILON / 5, steps=5, decay=1.0)
        without_momentum = MIM(epsilon=EPSILON, step_size=EPSILON / 5, steps=5, decay=0.0)
        a = with_momentum.run(view, inputs, labels).adversarials
        b = without_momentum.run(view, inputs, labels).adversarials
        assert a.shape == b.shape

    def test_apgd_at_least_as_strong_as_single_step(self, toy_view):
        view, inputs, labels = toy_view
        apgd = APGD(epsilon=EPSILON, steps=10)
        fgsm = FGSM(epsilon=EPSILON)
        apgd_loss = view.loss(apgd.run(view, inputs, labels).adversarials, labels).mean()
        fgsm_loss = view.loss(fgsm.run(view, inputs, labels).adversarials, labels).mean()
        assert apgd_loss >= fgsm_loss - 1e-6

    def test_attack_result_bookkeeping(self, toy_view):
        view, inputs, labels = toy_view
        result = PGD(epsilon=EPSILON, step_size=0.02, steps=3).run(view, inputs, labels)
        assert result.attack_name == "pgd"
        assert result.gradient_queries == 3 * 1  # one batch, three steps
        assert result.success.dtype == bool
        assert 0.0 <= result.success_rate <= 1.0
        assert result.l2_norms().shape == (len(labels),)

    def test_cw_prefers_small_perturbations(self, toy_view):
        """C&W is regularisation-based: its mean l2 should be below PGD's at same steps."""
        view, inputs, labels = toy_view
        cw = CarliniWagner(confidence=0.0, step_size=0.02, steps=10, l2_penalty=0.5)
        pgd = PGD(epsilon=EPSILON, step_size=EPSILON / 5, steps=10)
        cw_result = cw.run(view, inputs, labels)
        pgd_result = pgd.run(view, inputs, labels)
        assert cw_result.l2_norms().mean() <= pgd_result.l2_norms().mean() + 1e-6
        assert cw_result.adversarials.min() >= 0.0
        assert cw_result.adversarials.max() <= 1.0


class TestProjectLinf:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.integers(min_value=1, max_value=8),
    )
    def test_projection_always_lands_in_ball_and_range(self, epsilon, size):
        rng = np.random.default_rng(size)
        origin = rng.uniform(size=(size, 3))
        candidates = origin + rng.normal(scale=1.0, size=(size, 3))
        projected = project_linf(candidates, origin, epsilon)
        assert np.all(np.abs(projected - origin) <= epsilon + 1e-12)
        assert np.all(projected >= 0.0) and np.all(projected <= 1.0)

    def test_projection_is_identity_inside_the_ball(self):
        origin = np.full((2, 2), 0.5)
        candidates = origin + 0.01
        np.testing.assert_allclose(project_linf(candidates, origin, 0.05), candidates)

    def test_projection_is_idempotent(self):
        rng = np.random.default_rng(0)
        origin = rng.uniform(size=(4, 4))
        candidates = origin + rng.normal(scale=0.3, size=(4, 4))
        once = project_linf(candidates, origin, 0.1)
        twice = project_linf(once, origin, 0.1)
        np.testing.assert_allclose(once, twice)
