"""Tests for the Table II attack parameters and the attack-suite builders."""

from __future__ import annotations

import pytest

from repro.attacks import (
    APGD,
    FGSM,
    MIM,
    PGD,
    AttackSuiteConfig,
    CarliniWagner,
    RandomUniform,
    build_attack_suite,
    build_saga,
    table2_parameters,
)


class TestTable2Parameters:
    def test_cifar_epsilon_matches_paper(self):
        assert table2_parameters("cifar10").epsilon == pytest.approx(0.031)
        assert table2_parameters("cifar100").epsilon == pytest.approx(0.031)

    def test_imagenet_epsilon_is_doubled(self):
        assert table2_parameters("imagenet").epsilon == pytest.approx(0.062)

    def test_step_sizes_match_paper(self):
        assert table2_parameters("cifar10").step_size == pytest.approx(0.00155)
        assert table2_parameters("imagenet").step_size == pytest.approx(0.0031)

    def test_cw_confidence_is_50(self):
        for dataset in ("cifar10", "cifar100", "imagenet"):
            assert table2_parameters(dataset).cw_confidence == 50.0

    def test_saga_parameters(self):
        assert table2_parameters("cifar10").saga_alpha_cnn == pytest.approx(2.0e-4)
        assert table2_parameters("imagenet").saga_alpha_cnn == pytest.approx(0.001)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            table2_parameters("mnist")


class TestAttackSuiteBuilder:
    def test_suite_contains_the_five_table3_attacks(self):
        suite = build_attack_suite(AttackSuiteConfig(dataset="cifar10"))
        assert set(suite) == {"fgsm", "pgd", "mim", "cw", "apgd"}
        assert isinstance(suite["fgsm"], FGSM)
        assert isinstance(suite["pgd"], PGD)
        assert isinstance(suite["mim"], MIM)
        assert isinstance(suite["cw"], CarliniWagner)
        assert isinstance(suite["apgd"], APGD)

    def test_random_baseline_optional(self):
        suite = build_attack_suite(AttackSuiteConfig(dataset="cifar10", include_random_baseline=True))
        assert isinstance(suite["random"], RandomUniform)

    def test_epsilon_scale_is_applied(self):
        suite = build_attack_suite(AttackSuiteConfig(dataset="cifar10", epsilon_scale=2.0))
        assert suite["fgsm"].epsilon == pytest.approx(0.062)
        assert suite["pgd"].step_size == pytest.approx(0.0031)

    def test_max_steps_caps_iterations(self):
        suite = build_attack_suite(AttackSuiteConfig(dataset="cifar10", max_steps=7))
        assert suite["pgd"].steps == 7
        assert suite["mim"].steps == 7
        assert suite["cw"].steps == 7

    def test_apgd_uses_bench_budget(self):
        suite = build_attack_suite(AttackSuiteConfig(dataset="cifar10", apgd_steps=12))
        assert suite["apgd"].steps == 12

    def test_build_saga_defaults_and_overrides(self):
        config = AttackSuiteConfig(dataset="imagenet")
        saga = build_saga(config)
        assert saga.epsilon == pytest.approx(0.062)
        assert saga.alpha_cnn == pytest.approx(0.001)
        assert saga.alpha_vit == pytest.approx(0.999)
        overridden = build_saga(config, steps=5, alpha_cnn=0.5)
        assert overridden.steps == 5
        assert overridden.alpha_cnn == 0.5
