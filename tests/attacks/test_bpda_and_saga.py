"""Tests for the BPDA upsampling substitutes, SAGA and the patch attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AdversarialPatchAttack,
    AverageUpsampler,
    SelfAttentionGradientAttack,
    TokenUnprojectionUpsampler,
    TransposedConvUpsampler,
    attention_image_weights,
    attention_rollout,
    make_attacker_view,
    make_upsampler,
)
from repro.core import FullWhiteBoxView, RestrictedWhiteBoxView, ShieldedModel
from repro.models.simple import SimpleCNN, SimpleCNNConfig
from repro.models.vit import ViTConfig, VisionTransformer


def _tiny_cnn() -> SimpleCNN:
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=3, widths=(4, 8), image_size=8))


def _tiny_vit() -> VisionTransformer:
    return VisionTransformer(
        ViTConfig(image_size=8, patch_size=2, in_channels=3, num_classes=3, dim=8, depth=2, num_heads=2)
    )


class TestUpsamplers:
    def test_transposed_conv_shape(self, rng):
        upsampler = TransposedConvUpsampler(rng)
        adjoint = rng.normal(size=(2, 6, 8, 8))
        out = upsampler(adjoint, (2, 3, 8, 8))
        assert out.shape == (2, 3, 8, 8)

    def test_transposed_conv_upsamples_smaller_adjoints(self, rng):
        upsampler = TransposedConvUpsampler(rng)
        adjoint = rng.normal(size=(1, 4, 4, 4))
        out = upsampler(adjoint, (1, 3, 8, 8))
        assert out.shape == (1, 3, 8, 8)

    def test_transposed_conv_kernel_is_cached(self, rng):
        upsampler = TransposedConvUpsampler(rng)
        adjoint = rng.normal(size=(1, 4, 8, 8))
        first = upsampler(adjoint, (1, 3, 8, 8))
        second = upsampler(adjoint, (1, 3, 8, 8))
        np.testing.assert_allclose(first, second)

    def test_transposed_conv_rejects_token_adjoints(self, rng):
        with pytest.raises(ValueError):
            TransposedConvUpsampler(rng)(rng.normal(size=(1, 5, 8)), (1, 3, 8, 8))

    def test_average_upsampler_preserves_spatial_sign(self, rng):
        upsampler = AverageUpsampler()
        adjoint = np.ones((1, 4, 4, 4))
        adjoint[:, :, :2, :] = -1.0
        out = upsampler(adjoint, (1, 3, 8, 8))
        assert out.shape == (1, 3, 8, 8)
        assert np.all(out[:, :, :4, :] < 0.0)
        assert np.all(out[:, :, 4:, :] > 0.0)

    def test_token_unprojection_shape(self, rng):
        upsampler = TokenUnprojectionUpsampler(rng)
        adjoint = rng.normal(size=(2, 17, 12))  # 16 patches + class token
        out = upsampler(adjoint, (2, 3, 8, 8))
        assert out.shape == (2, 3, 8, 8)

    def test_token_unprojection_rejects_non_square_grids(self, rng):
        upsampler = TokenUnprojectionUpsampler(rng)
        with pytest.raises(ValueError):
            upsampler(rng.normal(size=(1, 8, 12)), (1, 3, 8, 8))

    def test_make_upsampler_auto_dispatch(self):
        assert isinstance(make_upsampler("vit"), TokenUnprojectionUpsampler)
        assert isinstance(make_upsampler("bit"), TransposedConvUpsampler)
        assert isinstance(make_upsampler("resnet", strategy="average"), AverageUpsampler)
        with pytest.raises(ValueError):
            make_upsampler("vit", strategy="bogus")

    def test_make_attacker_view_dispatch(self):
        model = _tiny_cnn()
        assert isinstance(make_attacker_view(model), FullWhiteBoxView)
        assert isinstance(make_attacker_view(ShieldedModel(model)), RestrictedWhiteBoxView)


class TestSaga:
    def test_attention_rollout_shape_and_rows(self, rng):
        maps = [rng.uniform(size=(2, 3, 5, 5)) for _ in range(2)]
        maps = [m / m.sum(axis=-1, keepdims=True) for m in maps]
        rollout = attention_rollout(maps)
        assert rollout.shape == (2, 5, 5)
        np.testing.assert_allclose(rollout.sum(axis=-1), 1.0, atol=1e-9)

    def test_attention_rollout_requires_maps(self):
        with pytest.raises(ValueError):
            attention_rollout([])

    def test_attention_image_weights_shape_and_range(self, rng):
        maps = [rng.uniform(size=(2, 2, 17, 17)) for _ in range(2)]
        maps = [m / m.sum(axis=-1, keepdims=True) for m in maps]
        weights = attention_image_weights(attention_rollout(maps), (2, 3, 8, 8))
        assert weights.shape == (2, 1, 8, 8)
        assert weights.max() <= 1.0 + 1e-9
        assert weights.min() >= 0.0

    def test_blended_gradient_uses_both_members(self, rng):
        vit = _tiny_vit()
        cnn = _tiny_cnn()
        saga = SelfAttentionGradientAttack(epsilon=0.1, step_size=0.02, steps=1, alpha_cnn=0.5)
        inputs = rng.uniform(size=(2, 3, 8, 8))
        labels = np.array([0, 1])
        blended = saga.blended_gradient(
            FullWhiteBoxView(vit), FullWhiteBoxView(cnn), inputs, labels
        )
        assert blended.shape == inputs.shape
        assert np.isfinite(blended).all()

    def test_run_against_ensemble_respects_epsilon(self, rng):
        vit, cnn = _tiny_vit(), _tiny_cnn()
        saga = SelfAttentionGradientAttack(epsilon=0.05, step_size=0.02, steps=3, alpha_cnn=0.5)
        inputs = rng.uniform(size=(4, 3, 8, 8))
        labels = np.array([0, 1, 2, 0])
        result = saga.run_against_ensemble(
            FullWhiteBoxView(vit), FullWhiteBoxView(cnn), inputs, labels
        )
        assert np.all(result.linf_norms() <= 0.05 + 1e-9)
        assert result.adversarials.min() >= 0.0 and result.adversarials.max() <= 1.0

    def test_single_view_fallback_uses_attention_for_vit(self, rng):
        vit = _tiny_vit()
        saga = SelfAttentionGradientAttack(epsilon=0.05, step_size=0.02, steps=2)
        result = saga.run(FullWhiteBoxView(vit), rng.uniform(size=(2, 3, 8, 8)), np.array([0, 1]))
        assert result.adversarials.shape == (2, 3, 8, 8)

    def test_saga_with_shielded_members_still_produces_valid_candidates(self, rng):
        vit, cnn = _tiny_vit(), _tiny_cnn()
        saga = SelfAttentionGradientAttack(epsilon=0.05, step_size=0.02, steps=2, alpha_cnn=0.5)
        adversarials = saga.craft_against_ensemble(
            make_attacker_view(ShieldedModel(vit)),
            make_attacker_view(ShieldedModel(cnn)),
            rng.uniform(size=(2, 3, 8, 8)),
            np.array([0, 1]),
        )
        assert adversarials.shape == (2, 3, 8, 8)
        assert np.isfinite(adversarials).all()


class TestPatchAttack:
    def test_patch_only_modifies_patch_region(self, rng):
        model = _tiny_cnn()
        attack = AdversarialPatchAttack(patch_size=3, steps=2, step_size=0.1, row=1, col=2)
        inputs = rng.uniform(size=(3, 3, 8, 8))
        labels = np.array([0, 1, 2])
        result = attack.run(FullWhiteBoxView(model), inputs, labels)
        perturbation = np.abs(result.perturbations)
        mask = np.zeros_like(perturbation, dtype=bool)
        mask[:, :, 1:4, 2:5] = True
        assert np.all(perturbation[~mask] == 0.0)
        assert attack.last_patch.shape == (3, 3, 3)

    def test_patch_values_stay_in_pixel_range(self, rng):
        model = _tiny_cnn()
        attack = AdversarialPatchAttack(patch_size=2, steps=3, step_size=0.2)
        result = attack.run(FullWhiteBoxView(model), rng.uniform(size=(2, 3, 8, 8)), np.array([0, 1]))
        assert result.adversarials.min() >= 0.0
        assert result.adversarials.max() <= 1.0
