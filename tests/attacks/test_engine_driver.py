"""Tests of the attack driver: backend parity, active-set shrinking, counting."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.attacks import (
    APGD,
    FGSM,
    MIM,
    PGD,
    AttackDriver,
    CarliniWagner,
    DriverConfig,
    SelfAttentionGradientAttack,
    make_attacker_view,
)
from repro.attacks.base import Attack
from repro.autodiff.tensor import get_default_dtype, set_default_dtype
from repro.core.shielded_model import ShieldedModel
from repro.models.registry import build_model
from repro.utils.rng import spawn_rng


@pytest.fixture(scope="module")
def batch():
    rng = spawn_rng("tests.driver.batch")
    images = rng.uniform(size=(8, 3, 16, 16))
    labels = rng.integers(0, 4, size=8)
    return images, labels


@pytest.fixture(scope="module")
def cnn_model():
    model = build_model("simple_cnn", num_classes=4, image_size=16)
    model.eval()
    return model


@pytest.fixture(scope="module")
def vit_model():
    model = build_model("vit_b32", num_classes=4, image_size=16)
    model.eval()
    return model


def _attack_factory(name: str):
    """Fresh attack instances (private RNGs) so runs are comparable."""
    builders = {
        "fgsm": lambda: FGSM(epsilon=0.1),
        "pgd": lambda: PGD(epsilon=0.1, step_size=0.02, steps=4),
        "pgd_random": lambda: PGD(
            epsilon=0.1, step_size=0.02, steps=4, random_start=True,
            rng=np.random.default_rng(11),
        ),
        "mim": lambda: MIM(epsilon=0.1, step_size=0.02, steps=4),
        "apgd": lambda: APGD(epsilon=0.1, steps=5, n_restarts=2),
        "cw": lambda: CarliniWagner(confidence=1.0, step_size=0.02, steps=4),
        "saga": lambda: SelfAttentionGradientAttack(epsilon=0.1, step_size=0.02, steps=4),
    }
    return builders[name]


_ALL_ATTACKS = ["fgsm", "pgd", "pgd_random", "mim", "apgd", "cw", "saga"]


class TestBackendParity:
    """`captured` must be bit-identical to `eager` for every attack."""

    @pytest.mark.parametrize("name", _ALL_ATTACKS)
    def test_white_box_parity(self, name, cnn_model, batch):
        images, labels = batch
        results = {}
        for backend in ("eager", "captured"):
            attack = _attack_factory(name)()
            view = make_attacker_view(cnn_model, backend=backend)
            results[backend] = AttackDriver(DriverConfig(backend=None)).run(
                attack, view, images, labels
            )
        eager, captured = results["eager"], results["captured"]
        np.testing.assert_array_equal(eager.adversarials, captured.adversarials)
        assert eager.gradient_queries == captured.gradient_queries
        np.testing.assert_array_equal(eager.queries_per_sample, captured.queries_per_sample)
        np.testing.assert_array_equal(eager.success, captured.success)

    @pytest.mark.parametrize("name", ["pgd", "cw", "apgd"])
    def test_shielded_view_parity(self, name, cnn_model, batch):
        images, labels = batch
        results = {}
        for backend in ("eager", "captured"):
            attack = _attack_factory(name)()
            view = make_attacker_view(
                ShieldedModel(cnn_model), rng=np.random.default_rng(5), backend=backend
            )
            results[backend] = AttackDriver(DriverConfig(backend=None)).run(
                attack, view, images, labels
            )
        np.testing.assert_array_equal(
            results["eager"].adversarials, results["captured"].adversarials
        )

    def test_saga_ensemble_parity_with_attention(self, vit_model, cnn_model, batch):
        """The SAGA multi-view fusion (attention rollout) must survive replay."""
        images, labels = batch
        results = {}
        for backend in ("eager", "captured"):
            saga = _attack_factory("saga")()
            vit_view = make_attacker_view(vit_model, backend=backend)
            cnn_view = make_attacker_view(cnn_model, backend=backend)
            results[backend] = AttackDriver(DriverConfig(backend=None)).run(
                saga, (vit_view, cnn_view), images, labels
            )
        np.testing.assert_array_equal(
            results["eager"].adversarials, results["captured"].adversarials
        )
        assert results["eager"].gradient_queries == results["captured"].gradient_queries

    def test_shared_backend_never_replays_a_dead_models_recording(self, batch):
        """Capture keys must be gc-safe: a model allocated at a reused address
        must not hit the previous model's cached recording."""
        import gc

        from repro.autodiff import CapturedExecution
        from repro.core.views import FullWhiteBoxView
        from repro.models.simple import MLPClassifier

        images = batch[0][:, :1, :1, :8].reshape(8, 1, 1, 8)
        labels = batch[1][:8] % 2
        backend = CapturedExecution()
        for trial in range(6):
            model = MLPClassifier(input_dim=8, num_classes=2, hidden_dim=8, input_shape=(1, 1, 8))
            view = FullWhiteBoxView(model)
            view.backend = backend  # shared across sequential models
            expected = FullWhiteBoxView(model).gradient(images, labels)
            for _ in range(3):
                np.testing.assert_array_equal(
                    expected, view.gradient(images, labels), err_msg=f"trial {trial}"
                )
            del model, view
            gc.collect()

    def test_driver_default_leaves_view_backend_alone(self, cnn_model, batch):
        images, labels = batch
        view = make_attacker_view(cnn_model, backend="captured")
        AttackDriver().run(_attack_factory("pgd")(), view, images, labels)
        assert view.backend.name == "captured"

    def test_driver_backend_override_applies_to_views(self, cnn_model, batch):
        """DriverConfig.backend switches an eager view to captured execution."""
        images, labels = batch
        view = make_attacker_view(cnn_model)
        AttackDriver(DriverConfig(backend="captured", active_set=False)).run(
            _attack_factory("pgd")(), view, images, labels
        )
        assert view.backend.name == "captured"
        assert view.backend.stats.replays > 0


class TestActiveSetShrinking:
    def test_queries_drop_and_success_is_preserved(self, cnn_model, batch):
        images, labels = batch
        attack = _attack_factory("pgd")()
        fixed = AttackDriver(DriverConfig(active_set=False)).run(
            attack, make_attacker_view(cnn_model), images, labels
        )
        active = AttackDriver(DriverConfig(active_set=True)).run(
            attack, make_attacker_view(cnn_model), images, labels
        )
        assert active.total_sample_queries <= fixed.total_sample_queries
        assert active.success_rate >= fixed.success_rate - 1e-9

    def test_frozen_samples_are_byte_identical_to_last_accepted_iterate(
        self, cnn_model, batch
    ):
        images, labels = batch
        snapshots = []

        def on_step(info):
            snapshots.append((set(info.active_indices.tolist()), info.adversarials.copy()))

        attack = PGD(epsilon=0.2, step_size=0.05, steps=6)
        result = AttackDriver(DriverConfig(active_set=True), callbacks=[on_step]).run(
            attack, make_attacker_view(cnn_model), images, labels
        )
        for sample in range(len(labels)):
            for active, iterates in snapshots:
                if sample not in active:
                    # Frozen from this snapshot on: the final adversarial must
                    # be byte-identical to the iterate it was frozen at.
                    assert (
                        result.adversarials[sample].tobytes() == iterates[sample].tobytes()
                    ), f"sample {sample} was modified after leaving the active set"
                    break

    def test_fixed_budget_attacks_opt_out(self, cnn_model, batch):
        images, labels = batch
        for name in ("apgd", "cw"):
            attack = _attack_factory(name)()
            assert not attack.supports_active_set
            result = AttackDriver(DriverConfig(active_set=True)).run(
                attack, make_attacker_view(cnn_model), images, labels
            )
            # Opted out: every sample sees the full gradient budget.
            assert int(result.queries_per_sample.min()) == int(result.queries_per_sample.max())


class TestQueryCounting:
    def test_counts_match_the_step_budget(self, cnn_model, batch):
        images, labels = batch
        result = AttackDriver(DriverConfig(active_set=False)).run(
            PGD(epsilon=0.1, step_size=0.02, steps=5),
            make_attacker_view(cnn_model),
            images,
            labels,
        )
        assert result.gradient_queries == 5
        assert result.queries_per_sample.tolist() == [5] * len(labels)
        assert result.total_sample_queries == 5 * len(labels)

    def test_counts_survive_attack_reuse(self, cnn_model, batch):
        """The counter is driver-owned: re-running an attack never leaks counts."""
        images, labels = batch
        attack = PGD(epsilon=0.1, step_size=0.02, steps=3)
        view = make_attacker_view(cnn_model)
        driver = AttackDriver(DriverConfig(active_set=False))
        first = driver.run(attack, view, images, labels)
        second = driver.run(attack, view, images, labels)
        assert first.gradient_queries == second.gradient_queries == 3

    def test_saga_counts_both_members(self, vit_model, cnn_model, batch):
        images, labels = batch
        saga = _attack_factory("saga")()
        result = saga.run_against_ensemble(
            make_attacker_view(vit_model), make_attacker_view(cnn_model), images, labels
        )
        # One ViT + one CNN gradient per step.
        assert result.gradient_queries == 2 * saga.steps


class TestLegacyCraftWrapper:
    def test_craft_only_subclass_works_with_deprecation_warning(self, cnn_model, batch):
        images, labels = batch

        class LegacySign(Attack):
            name = "legacy_sign"

            def craft(self, view, inputs, labels):
                gradient = view.gradient(inputs, labels)
                return np.clip(inputs + 0.05 * np.sign(gradient), 0.0, 1.0)

        with pytest.warns(DeprecationWarning, match="IterativeAttack"):
            result = LegacySign().run(make_attacker_view(cnn_model), images, labels)
        assert result.adversarials.shape == images.shape
        assert result.gradient_queries == 1
        assert result.queries_per_sample.sum() == len(labels)


class TestDtypeHygiene:
    """rng noise must not promote float32 attacks to float64 (satellite fix)."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        previous = get_default_dtype()
        yield
        set_default_dtype(previous)

    def test_float32_stays_float32_across_the_suite(self, batch):
        set_default_dtype("float32")
        model = build_model("simple_cnn", num_classes=4, image_size=16)
        model.eval()
        images = batch[0].astype(np.float32)
        labels = batch[1]
        view = make_attacker_view(model)
        for name in ("pgd_random", "fgsm", "mim"):
            result = _attack_factory(name)().run(view, images, labels)
            assert result.adversarials.dtype == np.float32, name
        from repro.attacks import RandomUniform

        noise = RandomUniform(epsilon=0.1, rng=np.random.default_rng(0))
        assert noise.run(view, images, labels).adversarials.dtype == np.float32

    def test_float32_shielded_substitute_gradient_stays_float32(self, batch):
        set_default_dtype("float32")
        model = build_model("simple_cnn", num_classes=4, image_size=16)
        model.eval()
        view = make_attacker_view(ShieldedModel(model), rng=np.random.default_rng(1))
        gradient = view.gradient(batch[0].astype(np.float32), batch[1])
        assert gradient.dtype == np.float32
