"""Tests for ShieldedModel and the attacker-facing gradient views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.bpda import make_attacker_view
from repro.autodiff import Tensor
from repro.core import (
    FullWhiteBoxView,
    RestrictedWhiteBoxView,
    ShieldedModel,
    chain_rule_is_broken,
    make_view,
    measure_shielded_model,
)
from repro.core.views import _per_sample_loss
from repro.models.simple import SimpleCNN, SimpleCNNConfig
from repro.models.vit import ViTConfig, VisionTransformer
from repro.tee import Enclave, EnclaveAccessError, TrustZoneEnclave


def _tiny_cnn() -> SimpleCNN:
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=4, widths=(4, 8), image_size=8))


def _tiny_vit() -> VisionTransformer:
    return VisionTransformer(
        ViTConfig(image_size=8, patch_size=4, in_channels=3, num_classes=4, dim=12, depth=1, num_heads=2)
    )


class TestShieldedModel:
    def test_predictions_match_unshielded_model(self, rng):
        model = _tiny_cnn()
        shielded = ShieldedModel(model)
        inputs = rng.uniform(size=(5, 3, 8, 8))
        np.testing.assert_array_equal(shielded.predict(inputs), model.predict(inputs))
        np.testing.assert_allclose(shielded.logits(inputs), model.logits(inputs))

    def test_stem_parameters_are_sealed(self):
        model = _tiny_cnn()
        shielded = ShieldedModel(model)
        assert shielded.sealed_parameter_bytes == sum(p.nbytes for p in model.stem_parameters())
        assert len(shielded.enclave.sealed_keys()) == len(model.stem_parameters())
        assert all(p.shielded for p in model.stem_parameters())

    def test_default_enclave_is_trustzone(self):
        shielded = ShieldedModel(_tiny_cnn())
        assert isinstance(shielded.enclave, TrustZoneEnclave)

    def test_frontier_is_recorded_and_clear(self, rng):
        model = _tiny_vit()
        shielded = ShieldedModel(model)
        shielded.logits(rng.uniform(size=(2, 3, 8, 8)))
        frontier = shielded.last_frontier
        assert frontier is not None
        assert not frontier.shielded
        assert frontier.shape == (2, model.config.sequence_length, model.config.dim)

    def test_world_boundary_counts_crossings(self, rng):
        shielded = ShieldedModel(_tiny_cnn())
        shielded.logits(rng.uniform(size=(2, 3, 8, 8)))
        assert shielded.enclave.boundary.stats.switches == 2
        shielded.logits(rng.uniform(size=(2, 3, 8, 8)))
        assert shielded.enclave.boundary.stats.switches == 4

    def test_regions_flushed_between_forwards_by_default(self, rng):
        shielded = ShieldedModel(_tiny_cnn())
        shielded.logits(rng.uniform(size=(2, 3, 8, 8)))
        first = shielded.enclave.used_bytes
        shielded.logits(rng.uniform(size=(2, 3, 8, 8)))
        assert shielded.enclave.used_bytes == first  # not accumulating

    def test_accumulate_regions_option(self, rng):
        shielded = ShieldedModel(_tiny_cnn(), accumulate_regions=True)
        shielded.logits(rng.uniform(size=(1, 3, 8, 8)))
        first = shielded.enclave.used_bytes
        shielded.logits(rng.uniform(size=(1, 3, 8, 8)))
        assert shielded.enclave.used_bytes > first

    def test_shield_report_breaks_chain_rule(self, rng):
        model = _tiny_cnn()
        shielded = ShieldedModel(model)
        inputs = rng.uniform(size=(2, 3, 8, 8))
        labels = np.array([0, 1])
        report = shielded.shield_report(inputs, labels)
        # The report's invariant is the core claim of the defense.
        from repro.autodiff import GraphSnapshot  # local import to rebuild the same graph

        assert report.shielded_value_ids
        assert report.shielded_jacobian_edges

    def test_shielded_fraction_is_small(self):
        shielded = ShieldedModel(_tiny_vit())
        fraction = shielded.shielded_fraction()
        assert 0.0 < fraction < 0.6

    def test_delegated_properties(self):
        model = _tiny_cnn()
        shielded = ShieldedModel(model)
        assert shielded.num_classes == model.num_classes
        assert shielded.input_shape == model.input_shape
        assert shielded.family == model.family

    def test_enclave_memory_measurement(self, rng):
        model = _tiny_vit()
        shielded = ShieldedModel(model)
        estimate = measure_shielded_model(
            shielded, rng.uniform(size=(1, 3, 8, 8)), np.array([1])
        )
        assert estimate.parameter_bytes == sum(p.nbytes for p in model.stem_parameters())
        assert estimate.activation_bytes > 0
        assert estimate.worst_case_bytes < shielded.enclave.memory_limit_bytes
        assert 0.0 < estimate.shielded_portion < 1.0


class TestFullWhiteBoxView:
    def test_gradient_matches_autodiff_direct(self, rng):
        model = _tiny_cnn()
        view = FullWhiteBoxView(model)
        inputs = rng.uniform(size=(2, 3, 8, 8))
        labels = np.array([0, 1])
        via_view = view.gradient(inputs, labels, loss="ce")
        # Direct computation through the autodiff engine.
        from repro.autodiff import functional as F

        tensor = Tensor(inputs, requires_grad=True, is_input=True)
        F.cross_entropy(model(tensor), labels, reduction="sum").backward()
        np.testing.assert_allclose(via_view, tensor.grad)

    def test_margin_loss_gradient_shape(self, rng):
        view = FullWhiteBoxView(_tiny_cnn())
        inputs = rng.uniform(size=(3, 3, 8, 8))
        labels = np.array([0, 1, 2])
        grad = view.gradient(inputs, labels, loss="margin", confidence=5.0)
        assert grad.shape == inputs.shape

    def test_loss_values_match_manual_cross_entropy(self, rng):
        view = FullWhiteBoxView(_tiny_cnn())
        inputs = rng.uniform(size=(4, 3, 8, 8))
        labels = np.array([0, 1, 2, 3])
        losses = view.loss(inputs, labels, loss="ce")
        logits = view.logits(inputs)
        manual = _per_sample_loss(logits, labels, "ce", 0.0)
        np.testing.assert_allclose(losses, manual)
        assert losses.shape == (4,)

    def test_unknown_loss_rejected(self, rng):
        view = FullWhiteBoxView(_tiny_cnn())
        with pytest.raises(ValueError):
            view.gradient(rng.uniform(size=(1, 3, 8, 8)), np.array([0]), loss="bogus")

    def test_make_view_dispatch(self):
        model = _tiny_cnn()
        assert isinstance(make_view(model), FullWhiteBoxView)
        with pytest.raises(ValueError):
            make_view(ShieldedModel(model))  # needs an upsampler


class TestRestrictedWhiteBoxView:
    def test_requires_shielded_model(self):
        with pytest.raises(TypeError):
            RestrictedWhiteBoxView(_tiny_cnn(), upsampler=lambda a, s: a)

    def test_true_input_gradient_is_blocked(self, rng):
        view = make_attacker_view(ShieldedModel(_tiny_cnn()))
        with pytest.raises(EnclaveAccessError):
            view.true_input_gradient(rng.uniform(size=(1, 3, 8, 8)), np.array([0]))

    def test_adjoint_has_frontier_shape(self, rng):
        model = _tiny_vit()
        view = make_attacker_view(ShieldedModel(model))
        inputs = rng.uniform(size=(2, 3, 8, 8))
        adjoint, input_shape = view.adjoint(inputs, np.array([0, 1]))
        assert adjoint.shape == (2, model.config.sequence_length, model.config.dim)
        assert input_shape == inputs.shape

    def test_gradient_has_input_shape_but_differs_from_true_gradient(self, rng):
        model = _tiny_cnn()
        shielded = ShieldedModel(model)
        restricted = make_attacker_view(shielded)
        full = FullWhiteBoxView(model)
        inputs = rng.uniform(size=(2, 3, 8, 8))
        labels = np.array([0, 1])
        substitute = restricted.gradient(inputs, labels)
        true_gradient = full.gradient(inputs, labels)
        assert substitute.shape == true_gradient.shape
        # The substitute must NOT be the true gradient (the whole point of PELTA).
        assert not np.allclose(substitute, true_gradient)
        cosine = float(
            (substitute * true_gradient).sum()
            / (np.linalg.norm(substitute) * np.linalg.norm(true_gradient) + 1e-12)
        )
        assert abs(cosine) < 0.9

    def test_logits_and_predictions_are_clear(self, rng):
        model = _tiny_cnn()
        view = make_attacker_view(ShieldedModel(model))
        inputs = rng.uniform(size=(3, 3, 8, 8))
        np.testing.assert_array_equal(view.predict(inputs), model.predict(inputs))

    def test_vit_attention_maps_remain_visible(self, rng):
        model = _tiny_vit()
        view = make_attacker_view(ShieldedModel(model))
        view.gradient(rng.uniform(size=(1, 3, 8, 8)), np.array([0]))
        assert len(view.attention_maps()) == model.config.depth
