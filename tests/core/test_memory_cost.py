"""Tests for the Table I enclave-memory estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memory_cost import (
    estimate_paper_model,
    format_bytes,
    graph_shield_bytes,
    measure_shielded_model,
    paper_table1,
)
from repro.models.paper_configs import PAPER_MODEL_SPECS

_MB = 1024 * 1024
_KB = 1024


class TestGraphDerivedAccounting:
    """Table I's measured bytes derive from op-registry metadata.

    The graph walk (kernel metadata) and the enclave's runtime region
    accounting are two independent derivations of the same quantity; they
    must agree to the byte or the memory model has drifted from the kernels.
    """

    @pytest.mark.parametrize("name", ["vit_b16", "bit_m_r101x3", "simple_cnn"])
    def test_graph_walk_matches_enclave_region_accounting(self, name, rng):
        from repro.core import ShieldedModel
        from repro.models import build_model

        model = build_model(name, num_classes=10, image_size=32)
        shielded = ShieldedModel(model)
        estimate = measure_shielded_model(
            shielded, rng.uniform(size=(1, 3, 32, 32)), np.array([0])
        )
        report = shielded.enclave.memory_report(include_gradients=True)
        stem_parameter_bytes = sum(p.nbytes for p in model.stem_parameters())
        assert estimate.activation_bytes == report.region_value_bytes
        assert estimate.gradient_bytes == report.region_gradient_bytes + stem_parameter_bytes

    def test_frontier_counts_even_after_crossing_clear(self, rng):
        """The stem output's value goes public but the enclave produced it;
        the worst-case accounting keys on created_shielded, not shielded."""
        from repro.core import ShieldedModel
        from repro.models import build_model
        from repro.autodiff import functional as F
        from repro.autodiff.tensor import Tensor

        shielded = ShieldedModel(build_model("simple_cnn", num_classes=10, image_size=16))
        x = Tensor(rng.uniform(size=(1, 3, 16, 16)), requires_grad=True, is_input=True)
        objective = F.cross_entropy(shielded(x), np.array([0]), reduction="sum")
        objective.backward()
        frontier = shielded.last_frontier
        assert not frontier.shielded and frontier.created_shielded
        values, _ = graph_shield_bytes(objective)
        assert values >= frontier.nbytes


class TestPaperEstimates:
    def test_all_table1_rows_are_estimated(self):
        rows = paper_table1()
        assert {row["model"] for row in rows} == {spec.name for spec in PAPER_MODEL_SPECS.values()}

    def test_vit_shield_is_megabytes_and_bit_shield_is_kilobytes(self):
        """The ordering of Table I must hold: ViT shields cost MBs, BiT shields KBs."""
        vit = estimate_paper_model("vit_l16")
        bit = estimate_paper_model("bit_m_r101x3")
        assert vit.parameters_only_bytes > 1 * _MB
        assert bit.parameters_only_bytes < 1 * _MB
        assert vit.worst_case_bytes > 10 * bit.parameters_only_bytes

    def test_vit_l16_larger_than_vit_b16(self):
        assert (
            estimate_paper_model("vit_l16").worst_case_bytes
            > estimate_paper_model("vit_b16").worst_case_bytes
        )

    def test_bit_r152x4_larger_than_r101x3(self):
        assert (
            estimate_paper_model("bit_m_r152x4").parameters_only_bytes
            > estimate_paper_model("bit_m_r101x3").parameters_only_bytes
        )

    def test_worst_case_matches_paper_order_of_magnitude(self):
        """Our estimate should be within ~4x of the paper's published value."""
        for key, spec in PAPER_MODEL_SPECS.items():
            estimate = estimate_paper_model(key)
            ours = estimate.worst_case_bytes if "vit" in key else estimate.parameters_only_bytes
            ratio = ours / spec.paper_tee_bytes
            assert 0.25 < ratio < 4.0, f"{key}: ratio {ratio}"

    def test_ensemble_shield_fits_trustzone_budget(self):
        """Table I: the ensemble shield (ViT-L/16 + BiT-M-R101x3) stays < 30 MB."""
        total = (
            estimate_paper_model("vit_l16").worst_case_bytes
            + estimate_paper_model("bit_m_r101x3").worst_case_bytes
        )
        assert total < 30 * _MB

    def test_shielded_portion_is_a_small_fraction(self):
        for key in PAPER_MODEL_SPECS:
            estimate = estimate_paper_model(key)
            assert estimate.shielded_portion < 0.05

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            estimate_paper_model("unknown_model")


class TestFormatting:
    def test_format_bytes_units(self):
        assert format_bytes(512 * _KB) == "512.00 KB"
        assert format_bytes(2 * _MB) == "2.00 MB"

    def test_table_rows_have_expected_fields(self):
        row = paper_table1()[0]
        assert {
            "model",
            "shielded_portion",
            "paper_shielded_portion",
            "parameters_only_bytes",
            "worst_case_bytes",
            "paper_tee_bytes",
        } <= set(row)
