"""Tests for PELTA's Algorithm 1 (graph shielding) and its invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import GraphSnapshot, Tensor
from repro.autodiff.functional import relu
from repro.core.selection import (
    select_by_memory_budget,
    select_first_transforms,
    select_shield_tagged,
)
from repro.core.shielding import (
    chain_rule_is_broken,
    clear_adjoint_candidates,
    input_connected_ids,
    pelta_shield,
)
from repro.tee import Enclave


def _chain_graph(depth: int = 4, width: int = 3):
    """Input -> depth linear+relu transforms -> scalar loss."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(2, width)), requires_grad=True, is_input=True, name="input")
    hidden = x
    parameters = []
    for _ in range(depth):
        weight = Tensor(rng.normal(size=(width, width)), requires_grad=True, is_parameter=True)
        parameters.append(weight)
        hidden = relu(hidden @ weight)
    loss = hidden.sum()
    return x, parameters, loss


class TestAlgorithmOne:
    def test_selected_values_are_masked(self):
        x, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        selected = select_first_transforms(graph, depth=2)
        report = pelta_shield(graph, selected)
        for node in selected:
            assert report.is_value_shielded(node.node_id)

    def test_recursion_reaches_the_input_leaf(self):
        x, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=2))
        assert report.is_value_shielded(x.node_id)

    def test_input_jacobian_edges_are_masked(self):
        x, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=2))
        for child in graph.children(x.node_id):
            assert report.is_jacobian_shielded(x.node_id, child.node_id)

    def test_parameter_jacobians_are_not_required_to_be_masked(self):
        """Jacobians towards parameter-only parents need not be hidden (Alg. 1 line 7)."""
        x, parameters, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=1))
        first_weight = parameters[0]
        children = graph.children(first_weight.node_id)
        for child in children:
            assert (first_weight.node_id, child.node_id) not in report.shielded_jacobian_edges

    def test_chain_rule_is_broken_after_shielding(self):
        _, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=1))
        assert chain_rule_is_broken(graph, report)

    def test_chain_rule_not_broken_without_shielding(self):
        _, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        empty = pelta_shield(graph, [])
        assert not chain_rule_is_broken(graph, empty)

    def test_deeper_selection_masks_a_superset(self):
        _, _, loss = _chain_graph(depth=5)
        graph = GraphSnapshot(loss)
        shallow = pelta_shield(graph, select_first_transforms(graph, depth=1))
        deep = pelta_shield(graph, select_first_transforms(graph, depth=3))
        assert shallow.shielded_value_ids <= deep.shielded_value_ids
        assert shallow.shielded_jacobian_edges <= deep.shielded_jacobian_edges

    def test_selecting_a_parameter_leaf_is_rejected(self):
        _, parameters, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        with pytest.raises(ValueError):
            pelta_shield(graph, [parameters[0].node_id])

    def test_selecting_the_input_leaf_is_rejected(self):
        x, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        with pytest.raises(ValueError):
            pelta_shield(graph, [x.node_id])

    def test_unknown_node_is_rejected(self):
        _, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        with pytest.raises(KeyError):
            pelta_shield(graph, [10**9])

    def test_memory_accounting_is_positive_and_consistent(self):
        _, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=2))
        assert report.value_bytes > 0
        assert report.worst_case_bytes >= report.value_bytes

    def test_sealing_into_enclave(self):
        _, _, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        enclave = Enclave("test", memory_limit_bytes=10**7)
        report = pelta_shield(
            graph, select_first_transforms(graph, depth=1), enclave=enclave, seal_values=True
        )
        assert len(enclave.sealed_keys()) == len(report.shielded_value_ids)
        for node_id in report.shielded_value_ids:
            assert graph.node(node_id).tensor.shielded

    def test_clear_adjoint_candidates_border_the_shield(self):
        _, _, loss = _chain_graph(depth=4)
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=2))
        candidates = clear_adjoint_candidates(graph, report)
        assert candidates, "there must be at least one clear adjoint candidate"
        for node in candidates:
            assert node.node_id not in report.shielded_value_ids
            assert set(node.parent_ids) & report.shielded_value_ids

    def test_input_connected_ids(self):
        x, parameters, loss = _chain_graph()
        graph = GraphSnapshot(loss)
        connected = input_connected_ids(graph)
        assert x.node_id in connected
        assert loss.node_id in connected
        assert parameters[0].node_id not in connected


class TestSelectionStrategies:
    def test_select_first_transforms_depth_bound(self):
        _, _, loss = _chain_graph(depth=4)
        graph = GraphSnapshot(loss)
        depths = graph.depth_from_inputs()
        for node in select_first_transforms(graph, depth=2):
            assert 1 <= depths[node.node_id] <= 2

    def test_select_first_transforms_rejects_zero_depth(self):
        _, _, loss = _chain_graph()
        with pytest.raises(ValueError):
            select_first_transforms(GraphSnapshot(loss), depth=0)

    def test_select_shield_tagged_matches_scope(self):
        from repro.autodiff import shield_scope

        x = Tensor(np.ones((2, 3)), requires_grad=True, is_input=True)
        with shield_scope():
            hidden = relu(x * 2.0)
        loss = (hidden + 1.0).sum()
        graph = GraphSnapshot(loss)
        tagged_ids = {node.node_id for node in select_shield_tagged(graph)}
        assert hidden.node_id in tagged_ids
        assert loss.node_id not in tagged_ids

    def test_select_by_memory_budget_respects_budget(self):
        _, _, loss = _chain_graph(depth=5)
        graph = GraphSnapshot(loss)
        generous = select_by_memory_budget(graph, budget_bytes=10**9)
        tight = select_by_memory_budget(graph, budget_bytes=200)
        assert len(generous) >= len(tight)
        tight_bytes = sum(2 * node.nbytes for node in tight)
        assert tight_bytes <= 200 or len(tight) == 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_property_chain_rule_broken_for_any_depth(self, depth):
        """Whatever shield depth the defender selects, the attacker's chain rule breaks."""
        _, _, loss = _chain_graph(depth=5)
        graph = GraphSnapshot(loss)
        report = pelta_shield(graph, select_first_transforms(graph, depth=depth))
        assert chain_rule_is_broken(graph, report)
        # All shielded values are input-connected (never pure parameter subgraphs).
        connected = input_connected_ids(graph)
        assert report.shielded_value_ids <= connected
