"""Additional cross-cutting coverage: harness utilities, upsamplers, enclaves.

These tests close gaps that the per-module suites do not reach: the batched
attack runner used by the Table III harness, the flat-adjoint upsampler, the
SGX paging model, and a couple of defensive-behaviour checks on the public
API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    FGSM,
    PGD,
    RandomProjectionUpsampler,
    RandomUniform,
    make_attacker_view,
)
from repro.core import RestrictedWhiteBoxView, ShieldedModel
from repro.eval import run_attack_in_batches
from repro.eval.harness import ExperimentConfig
from repro.models.simple import MLPClassifier, SimpleCNN, SimpleCNNConfig
from repro.tee import SGXEnclave, TrustZoneEnclave


def _tiny_cnn() -> SimpleCNN:
    return SimpleCNN(SimpleCNNConfig(in_channels=3, num_classes=3, widths=(4, 8), image_size=8))


class TestRunAttackInBatches:
    def test_covers_every_sample_in_order(self, rng):
        model = _tiny_cnn()
        view = make_attacker_view(model)
        images = rng.uniform(size=(7, 3, 8, 8))
        labels = np.array([0, 1, 2, 0, 1, 2, 0])
        adversarials = run_attack_in_batches(FGSM(epsilon=0.05), view, images, labels, batch_size=3)
        assert adversarials.shape == images.shape
        # FGSM perturbs every pixel by exactly epsilon (up to clipping).
        assert np.abs(adversarials - images).max() <= 0.05 + 1e-12

    def test_empty_input(self, rng):
        model = _tiny_cnn()
        view = make_attacker_view(model)
        adversarials = run_attack_in_batches(
            FGSM(epsilon=0.05), view, np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=np.int64), 4
        )
        assert adversarials.shape[0] == 0

    def test_batched_equals_single_batch_for_deterministic_attack(self, rng):
        model = _tiny_cnn()
        view = make_attacker_view(model)
        images = rng.uniform(size=(6, 3, 8, 8))
        labels = np.array([0, 1, 2, 0, 1, 2])
        attack = PGD(epsilon=0.05, step_size=0.02, steps=3)
        batched = run_attack_in_batches(attack, view, images, labels, batch_size=2)
        single = run_attack_in_batches(attack, view, images, labels, batch_size=6)
        np.testing.assert_allclose(batched, single)


class TestFlatUpsamplerAndMlpShield:
    def test_random_projection_shape_and_determinism(self, rng):
        upsampler = RandomProjectionUpsampler(np.random.default_rng(3))
        adjoint = rng.normal(size=(4, 10))
        first = upsampler(adjoint, (4, 3, 4, 4))
        second = upsampler(adjoint, (4, 3, 4, 4))
        assert first.shape == (4, 3, 4, 4)
        np.testing.assert_allclose(first, second)

    def test_rejects_non_flat_adjoints(self, rng):
        with pytest.raises(ValueError):
            RandomProjectionUpsampler()(rng.normal(size=(1, 2, 3, 3)), (1, 3, 6, 6))

    def test_shielded_mlp_gets_restricted_view_automatically(self, rng):
        model = MLPClassifier(input_dim=27, num_classes=3, hidden_dim=8, input_shape=(3, 3, 3))
        view = make_attacker_view(ShieldedModel(model))
        assert isinstance(view, RestrictedWhiteBoxView)
        gradient = view.gradient(rng.uniform(size=(2, 3, 3, 3)), np.array([0, 1]))
        assert gradient.shape == (2, 3, 3, 3)


class TestEnclaveVariantsWithShieldedModels:
    def test_shielded_model_with_sgx_enclave(self, rng):
        model = _tiny_cnn()
        shielded = ShieldedModel(model, enclave=SGXEnclave(name="sgx-test"))
        predictions = shielded.predict(rng.uniform(size=(3, 3, 8, 8)))
        assert predictions.shape == (3,)
        assert shielded.enclave.paging_penalty_us() == 0.0

    def test_custom_trustzone_budget_is_respected(self):
        from repro.tee import EnclaveMemoryError

        model = _tiny_cnn()
        tiny_enclave = TrustZoneEnclave(name="tiny", memory_limit_bytes=64)
        with pytest.raises(EnclaveMemoryError):
            ShieldedModel(model, enclave=tiny_enclave)

    def test_two_shielded_models_do_not_share_enclaves(self):
        first = ShieldedModel(_tiny_cnn())
        second = ShieldedModel(_tiny_cnn())
        assert first.enclave is not second.enclave
        assert first.enclave.sealed_keys() == second.enclave.sealed_keys()


class TestExperimentConfigDefaults:
    def test_saga_alpha_override_defaults_to_balanced(self):
        assert ExperimentConfig().saga_alpha_cnn == 0.5

    def test_attacks_tuple_defaults_to_table3_suite(self):
        assert ExperimentConfig().attacks == ("fgsm", "pgd", "mim", "cw", "apgd")

    def test_upsampling_strategy_defaults_to_auto(self):
        assert ExperimentConfig().upsampling_strategy == "auto"


class TestRandomBaselineAgainstShieldedModel:
    def test_random_attack_ignores_the_view_entirely(self, rng):
        """The random baseline produces the same perturbation budget either way."""
        model = _tiny_cnn()
        images = rng.uniform(size=(4, 3, 8, 8))
        labels = np.array([0, 1, 2, 0])
        attack = RandomUniform(epsilon=0.1, rng=np.random.default_rng(5))
        clear = attack.run(make_attacker_view(model), images, labels)
        attack_again = RandomUniform(epsilon=0.1, rng=np.random.default_rng(5))
        shielded = attack_again.run(make_attacker_view(ShieldedModel(model)), images, labels)
        np.testing.assert_allclose(clear.adversarials, shielded.adversarials)
