"""Tests for repro.utils (rng, config, serialization, timing, logging)."""

from __future__ import annotations

import dataclasses
import logging

import numpy as np
import pytest

from repro.utils import (
    ConfigError,
    RngRegistry,
    Timer,
    config_from_dict,
    config_to_dict,
    get_logger,
    get_rng,
    load_state,
    save_state,
    set_global_seed,
    spawn_rng,
)


class TestRng:
    def test_same_name_returns_same_generator(self):
        assert get_rng("a") is get_rng("a")

    def test_different_names_return_different_streams(self):
        a = spawn_rng("stream-a").random(8)
        b = spawn_rng("stream-b").random(8)
        assert not np.allclose(a, b)

    def test_spawn_is_deterministic_for_same_seed(self):
        set_global_seed(5)
        first = spawn_rng("x").random(4)
        set_global_seed(5)
        second = spawn_rng("x").random(4)
        np.testing.assert_allclose(first, second)

    def test_reset_changes_streams(self):
        set_global_seed(1)
        first = spawn_rng("x").random(4)
        set_global_seed(2)
        second = spawn_rng("x").random(4)
        assert not np.allclose(first, second)

    def test_registry_seed_property(self):
        registry = RngRegistry(seed=42)
        assert registry.seed == 42
        registry.reset(43)
        assert registry.seed == 43

    def test_registry_get_caches(self):
        registry = RngRegistry(seed=0)
        assert registry.get("s") is registry.get("s")

    def test_registry_spawn_independent_of_cache(self):
        registry = RngRegistry(seed=0)
        cached = registry.get("s")
        fresh = registry.spawn("s")
        assert cached is not fresh


@dataclasses.dataclass
class _DemoConfig:
    alpha: float = 1.0
    steps: int = 10


class TestConfig:
    def test_roundtrip(self):
        config = _DemoConfig(alpha=2.5, steps=3)
        assert config_from_dict(_DemoConfig, config_to_dict(config)) == config

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigError):
            config_from_dict(_DemoConfig, {"alpha": 1.0, "bogus": 2})

    def test_non_dataclass_raises(self):
        with pytest.raises(ConfigError):
            config_to_dict({"not": "a dataclass"})

    def test_from_dict_requires_dataclass_type(self):
        with pytest.raises(ConfigError):
            config_from_dict(dict, {"a": 1})


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        state = {"weight": np.arange(6).reshape(2, 3).astype(np.float64), "bias": np.ones(3)}
        path = tmp_path / "state.npz"
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == {"weight", "bias"}
        np.testing.assert_allclose(loaded["weight"], state["weight"])
        np.testing.assert_allclose(loaded["bias"], state["bias"])


class TestTimer:
    def test_accumulates_elapsed_time(self):
        timer = Timer()
        with timer:
            sum(range(1000))
        with timer:
            sum(range(1000))
        assert timer.calls == 2
        assert timer.elapsed > 0.0
        assert timer.mean > 0.0

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.calls == 0
        assert timer.elapsed == 0.0
        assert timer.mean == 0.0


class TestLogging:
    def test_logger_namespace(self):
        logger = get_logger("something")
        assert logger.name == "repro.something"

    def test_logger_existing_namespace_kept(self):
        logger = get_logger("repro.eval")
        assert logger.name == "repro.eval"

    def test_logger_is_logging_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)
