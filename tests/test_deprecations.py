"""The deprecated compatibility wrappers must keep warning external callers.

Every in-repo caller (examples/, benchmarks/, the engine cells) has been
migrated to the federation runtime and the attack driver; these tests pin
the wrappers' contract for *external* code: they still work, and they still
emit a :class:`DeprecationWarning` pointing at the replacement API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import Attack
from repro.attacks.bpda import make_attacker_view
from repro.autodiff.tensor import Tensor
from repro.fl.client import HonestClient
from repro.fl.rounds import FederatedRunConfig, FederatedTrainer, build_federation
from repro.models.simple import MLPClassifier
from repro.utils.rng import set_global_seed


@pytest.fixture(autouse=True)
def _seed():
    set_global_seed(20230913)


def _mlp_factory() -> MLPClassifier:
    return MLPClassifier(input_dim=8, num_classes=3, hidden_dim=8)


def _federation(rng):
    images = rng.uniform(size=(24, 1, 1, 8))
    labels = rng.integers(0, 3, size=24)
    return build_federation(_mlp_factory, images, labels, num_clients=3)


class TestFederationWrappers:
    def test_run_round_warns_and_still_runs(self, rng):
        server, clients = _federation(rng)
        with pytest.warns(DeprecationWarning, match="FederationRuntime"):
            result = server.run_round(clients)
        assert result.round_index == 0
        assert len(result.participating_clients) == len(clients)

    def test_federated_trainer_warns_on_construction(self, rng):
        server, clients = _federation(rng)
        with pytest.warns(DeprecationWarning, match="FederationRuntime"):
            FederatedTrainer(server, clients, FederatedRunConfig(num_rounds=1))


class TestAttackWrappers:
    def test_craft_only_attack_warns_and_still_runs(self, rng):
        class CraftOnly(Attack):
            name = "craft_only"

            def craft(self, view, inputs, labels):
                gradient = view.gradient(inputs, labels)
                return np.clip(inputs + 0.05 * np.sign(gradient), 0.0, 1.0)

        model = _mlp_factory()
        inputs = rng.uniform(size=(4, 1, 1, 8))
        labels = model.predict(inputs)
        with pytest.warns(DeprecationWarning, match="IterativeAttack"):
            result = CraftOnly().run(make_attacker_view(model), inputs, labels)
        assert result.adversarials.shape == inputs.shape
        assert result.gradient_queries == 1

    def test_attack_gradient_helper_warns(self, rng):
        model = _mlp_factory()
        inputs = rng.uniform(size=(2, 1, 1, 8))
        labels = model.predict(inputs)
        view = make_attacker_view(model)
        with pytest.warns(DeprecationWarning, match="view.gradient"):
            gradient = Attack()._gradient(view, inputs, labels)
        assert gradient.shape == inputs.shape


class TestTensorMakeShim:
    """Third-party closure-built ops keep working through Tensor._make."""

    def test_make_warns_and_builds_a_working_node(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)

        def forward_fn():
            return x.data * 2.0

        def backward_fn(grad):
            x._accumulate(grad * 2.0)

        with pytest.warns(DeprecationWarning, match="repro.autodiff.ops"):
            out = Tensor._make(forward_fn(), (x,), "double", backward_fn, forward_fn)
        assert out.op == "double"
        assert out.requires_grad
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 2.0))

    def test_made_nodes_replay_through_the_captured_backend(self, rng):
        """Closure ops carry no registry metadata but still record/replay
        (unfused) because the shim registers their forward thunk."""
        from repro.autodiff import CapturedExecution, EagerExecution, TraceHandles

        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True, is_parameter=True)

        def trace(array):
            x = Tensor(array, requires_grad=True, is_input=True)

            def forward_fn():
                return np.square(x.data)

            def backward_fn(grad):
                x._accumulate(grad * 2.0 * x.data)

            with pytest.warns(DeprecationWarning):
                squared = Tensor._make(forward_fn(), (x,), "square", backward_fn, forward_fn)
            return TraceHandles(objective=(squared @ w).sum(), input=x)

        eager, captured = EagerExecution(), CapturedExecution()
        for _ in range(4):
            batch = rng.normal(size=(3, 4))
            expected = np.array(eager.run(trace, batch).input.grad)
            actual = np.array(captured.run(trace, batch, key="sq").input.grad)
            np.testing.assert_array_equal(expected, actual)
        assert captured.stats.replays == 2


class TestInRepoCallersAreMigrated:
    """No example or benchmark may trip the compatibility wrappers again."""

    def test_no_deprecated_calls_in_examples_and_benchmarks(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        offenders = []
        for path in sorted((root / "examples").glob("*.py")) + sorted(
            (root / "benchmarks").glob("*.py")
        ):
            text = path.read_text()
            for needle in (".run_round(", "FederatedTrainer(", "._gradient("):
                if needle in text:
                    offenders.append(f"{path.name}: {needle}")
        assert not offenders, f"deprecated API usage crept back in: {offenders}"

    def test_no_tensor_make_calls_left_in_tree(self):
        """Every in-tree op goes through the registry; the _make shim is for
        external code only (its DeprecationWarning must never fire here)."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        offenders = []
        for path in sorted((root / "src").rglob("*.py")) + sorted(
            (root / "examples").glob("*.py")
        ) + sorted((root / "benchmarks").glob("*.py")):
            if "._make(" in path.read_text():
                offenders.append(str(path.relative_to(root)))
        assert not offenders, f"Tensor._make usage crept back in: {offenders}"
