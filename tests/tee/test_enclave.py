"""Tests for the enclave simulator: confidentiality and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Parameter
from repro.tee import (
    Enclave,
    EnclaveAccessError,
    EnclaveMemoryError,
    SGXEnclave,
    TrustZoneEnclave,
)

_MB = 1024 * 1024


class TestSealedStorage:
    def test_seal_and_privileged_unseal(self, rng):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        secret = rng.normal(size=(8, 8))
        enclave.seal("weights", secret)
        recovered = enclave.unseal("weights", authorized=True)
        np.testing.assert_allclose(recovered, secret)

    def test_unauthorized_unseal_is_blocked(self, rng):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        enclave.seal("weights", rng.normal(size=(4,)))
        with pytest.raises(EnclaveAccessError):
            enclave.unseal("weights")

    def test_unseal_unknown_key(self):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        with pytest.raises(KeyError):
            enclave.unseal("missing", authorized=True)

    def test_sealing_a_tensor_marks_it_shielded(self, rng):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        tensor = Tensor(rng.normal(size=(3,)))
        assert not tensor.shielded
        enclave.seal("t", tensor)
        assert tensor.shielded

    def test_sealed_copy_is_independent(self, rng):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        array = rng.normal(size=(3,))
        enclave.seal("a", array)
        array[:] = 0.0
        assert not np.allclose(enclave.unseal("a", authorized=True), 0.0)

    def test_seal_parameters_and_keys(self):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        parameters = [Parameter(np.ones((2, 2)), name="w"), Parameter(np.ones(2), name="b")]
        sealed_bytes = enclave.seal_parameters(parameters, prefix="stem.")
        assert sealed_bytes == sum(p.nbytes for p in parameters)
        assert all(key.startswith("stem.") for key in enclave.sealed_keys())
        assert all(p.shielded for p in parameters)

    def test_discard_and_contains(self, rng):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        enclave.seal("x", rng.normal(size=(2,)))
        assert enclave.contains("x")
        enclave.discard("x")
        assert not enclave.contains("x")


class TestMemoryAccounting:
    def test_memory_limit_enforced_on_seal(self):
        enclave = Enclave("small", memory_limit_bytes=100)
        with pytest.raises(EnclaveMemoryError):
            enclave.seal("big", np.zeros(1000))

    def test_used_and_available_bytes(self, rng):
        enclave = Enclave("e", memory_limit_bytes=10_000)
        payload = rng.normal(size=(10, 10))
        enclave.seal("p", payload)
        assert enclave.used_bytes == payload.nbytes
        assert enclave.available_bytes == 10_000 - payload.nbytes

    def test_shield_scope_accounts_region_tensors(self):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        with enclave.shield_scope("stem"):
            value = Tensor(np.ones((16, 16)), requires_grad=True) * 2.0
        report = enclave.memory_report()
        assert report.region_value_bytes >= value.nbytes
        assert report.region_gradient_bytes >= value.nbytes
        assert report.total_bytes == enclave.used_bytes

    def test_flush_regions_releases_memory(self):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        with enclave.shield_scope("stem"):
            Tensor(np.ones((16, 16))) * 2.0
        assert enclave.used_bytes > 0
        enclave.flush_regions()
        assert enclave.used_bytes == 0

    def test_check_capacity_raises_when_regions_exceed_limit(self):
        enclave = Enclave("e", memory_limit_bytes=256)
        with enclave.shield_scope("stem"):
            Tensor(np.ones((16, 16))) * 2.0
        with pytest.raises(EnclaveMemoryError):
            enclave.check_capacity()

    def test_limit_not_enforced_when_disabled(self):
        enclave = Enclave("e", memory_limit_bytes=8, enforce_limit=False)
        enclave.seal("big", np.zeros(100))  # should not raise
        assert enclave.used_bytes > enclave.memory_limit_bytes


class TestEnclaveVariants:
    def test_trustzone_default_limit_is_30mb(self):
        assert TrustZoneEnclave().memory_limit_bytes == 30 * _MB

    def test_sgx_default_limit_and_paging_penalty(self):
        enclave = SGXEnclave(memory_limit_bytes=1024, page_fault_cost_us=10.0)
        assert enclave.paging_penalty_us() == 0.0
        enclave.seal("large", np.zeros(4096))  # overflows EPC but does not raise
        assert enclave.paging_penalty_us() > 0.0

    def test_measurement_changes_with_content(self, rng):
        enclave = Enclave("e", memory_limit_bytes=_MB)
        empty_measurement = enclave.measurement()
        enclave.seal("w", rng.normal(size=(4,)))
        assert enclave.measurement() != empty_measurement

    def test_attest_produces_verifiable_quote(self, rng):
        from repro.tee import verify_quote

        enclave = Enclave("e", memory_limit_bytes=_MB)
        enclave.seal("w", rng.normal(size=(4,)))
        nonce = b"nonce-123"
        key = b"device-key"
        quote = enclave.attest(nonce, key)
        assert verify_quote(quote, enclave.measurement(), nonce, key)
