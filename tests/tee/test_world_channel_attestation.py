"""Tests for world switching, the secure channel and attestation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tee import (
    EncryptedMessage,
    SecureChannel,
    SecureChannelError,
    WorldBoundary,
    WorldSwitchCostModel,
    establish_session,
    measure_payload,
    produce_quote,
    verify_quote,
)


class TestWorldBoundary:
    def test_switch_counting_and_direction(self):
        boundary = WorldBoundary()
        boundary.enter_secure_world(1000)
        assert boundary.in_secure_world
        boundary.exit_secure_world(500)
        assert not boundary.in_secure_world
        assert boundary.stats.switches == 2
        assert boundary.stats.bytes_in == 1000
        assert boundary.stats.bytes_out == 500

    def test_simulated_time_grows_with_payload(self):
        boundary = WorldBoundary()
        small = boundary.secure_call(1024, 1024)
        large = boundary.secure_call(10 * 1024 * 1024, 1024)
        assert large > small

    def test_cost_model_transfer_time_monotone(self):
        model = WorldSwitchCostModel()
        assert model.transfer_time_us(2 * 1024 * 1024) > model.transfer_time_us(1024)

    def test_reset(self):
        boundary = WorldBoundary()
        boundary.secure_call(100, 100)
        boundary.reset()
        assert boundary.stats.switches == 0
        assert boundary.stats.simulated_time_us == 0.0

    def test_switch_latency_dominates_for_tiny_payloads(self):
        model = WorldSwitchCostModel(switch_latency_us=100.0)
        boundary = WorldBoundary(model)
        elapsed = boundary.enter_secure_world(8)
        assert elapsed == pytest.approx(100.0, rel=0.1)


class TestSecureChannel:
    def test_roundtrip(self, rng):
        sender, receiver = establish_session(rng)
        message = sender.encrypt(b"gradient payload")
        assert receiver.decrypt(message) == b"gradient payload"

    def test_ciphertext_differs_from_plaintext(self, rng):
        sender, _ = establish_session(rng)
        message = sender.encrypt(b"secret-weights")
        assert message.ciphertext != b"secret-weights"

    def test_tampering_is_detected(self, rng):
        sender, receiver = establish_session(rng)
        message = sender.encrypt(b"secret")
        tampered = EncryptedMessage(
            nonce=message.nonce,
            ciphertext=bytes([message.ciphertext[0] ^ 0xFF]) + message.ciphertext[1:],
            mac=message.mac,
        )
        with pytest.raises(SecureChannelError):
            receiver.decrypt(tampered)

    def test_wrong_key_fails(self, rng):
        sender, _ = establish_session(rng)
        eavesdropper = SecureChannel(b"0" * 32)
        message = sender.encrypt(b"secret")
        with pytest.raises(SecureChannelError):
            eavesdropper.decrypt(message)

    def test_array_roundtrip(self, rng):
        sender, receiver = establish_session(rng)
        array = rng.normal(size=(4, 5)).astype(np.float32)
        message, shape, dtype = sender.encrypt_array(array)
        recovered = receiver.decrypt_array(message, shape, dtype)
        np.testing.assert_allclose(recovered, array)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SecureChannel(b"short")

    def test_statistics_accumulate(self, rng):
        sender, _ = establish_session(rng)
        sender.encrypt(b"abc")
        sender.encrypt(b"defg")
        assert sender.messages_sent == 2
        assert sender.bytes_sent == 7

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=256))
    def test_roundtrip_property(self, payload):
        sender = SecureChannel(b"k" * 32, rng=np.random.default_rng(0))
        receiver = SecureChannel(b"k" * 32)
        assert receiver.decrypt(sender.encrypt(payload)) == payload


class TestAttestation:
    def test_quote_verifies_with_correct_inputs(self):
        measurement = measure_payload([b"stem-weights", b"code"])
        quote = produce_quote("enclave", measurement, b"nonce", b"key")
        assert verify_quote(quote, measurement, b"nonce", b"key")

    def test_quote_rejects_wrong_nonce(self):
        measurement = measure_payload([b"x"])
        quote = produce_quote("enclave", measurement, b"nonce", b"key")
        assert not verify_quote(quote, measurement, b"other-nonce", b"key")

    def test_quote_rejects_wrong_measurement(self):
        measurement = measure_payload([b"x"])
        quote = produce_quote("enclave", measurement, b"nonce", b"key")
        assert not verify_quote(quote, measure_payload([b"y"]), b"nonce", b"key")

    def test_quote_rejects_wrong_key(self):
        measurement = measure_payload([b"x"])
        quote = produce_quote("enclave", measurement, b"nonce", b"key")
        assert not verify_quote(quote, measurement, b"nonce", b"other-key")

    def test_measurement_is_deterministic_and_order_sensitive(self):
        assert measure_payload([b"a", b"b"]) == measure_payload([b"a", b"b"])
        assert measure_payload([b"a", b"b"]) != measure_payload([b"b", b"a"])
