"""Edge cases of the world-switch cost model and enclave capacity checks.

Covers the corners the serving runtime leans on: zero-byte crossings (pure
context switches), counter reset semantics, and ``check_capacity`` failure
paths while sealing stem parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.tee.enclave import Enclave
from repro.tee.errors import EnclaveMemoryError
from repro.tee.world import WorldBoundary, WorldSwitchCostModel


class TestZeroBytePayloads:
    def test_zero_byte_crossing_costs_exactly_one_switch_latency(self):
        boundary = WorldBoundary(WorldSwitchCostModel(switch_latency_us=40.0))
        elapsed = boundary.enter_secure_world(0)
        assert elapsed == pytest.approx(40.0)
        assert boundary.stats.switches == 1
        assert boundary.stats.bytes_in == 0
        assert boundary.stats.bytes_out == 0
        assert boundary.stats.simulated_time_us == pytest.approx(40.0)

    def test_zero_byte_transfer_time_is_zero(self):
        model = WorldSwitchCostModel()
        assert model.transfer_time_us(0) == 0.0

    def test_zero_byte_roundtrip_counts_both_directions(self):
        boundary = WorldBoundary()
        boundary.secure_call(0, 0)
        assert boundary.stats.switches == 2
        assert boundary.stats.bytes_in == 0
        assert boundary.stats.bytes_out == 0
        assert not boundary.in_secure_world


class TestResetSemantics:
    def test_reset_clears_counters_and_world_flag(self):
        boundary = WorldBoundary()
        boundary.enter_secure_world(1024)
        assert boundary.in_secure_world
        boundary.reset()
        assert boundary.stats.switches == 0
        assert boundary.stats.bytes_in == 0
        assert boundary.stats.bytes_out == 0
        assert boundary.stats.simulated_time_us == 0.0
        assert not boundary.in_secure_world

    def test_reset_preserves_the_cost_model(self):
        model = WorldSwitchCostModel(switch_latency_us=7.0)
        boundary = WorldBoundary(model)
        boundary.enter_secure_world(64)
        boundary.reset()
        assert boundary.cost_model is model
        assert boundary.enter_secure_world(0) == pytest.approx(7.0)

    def test_stats_reset_is_idempotent(self):
        boundary = WorldBoundary()
        boundary.reset()
        boundary.reset()
        assert boundary.stats.switches == 0


class TestSealCapacityFailures:
    def _parameter(self, size: int, name: str) -> Parameter:
        return Parameter(np.zeros(size, dtype=np.float64), name=name)

    def test_seal_parameters_over_budget_raises(self):
        enclave = Enclave("tiny", memory_limit_bytes=1000)
        parameters = [self._parameter(100, "w0"), self._parameter(100, "w1")]
        with pytest.raises(EnclaveMemoryError, match="over budget"):
            enclave.seal_parameters(parameters)

    def test_partial_seal_keeps_earlier_parameters(self):
        # The capacity check runs per seal: parameters sealed before the
        # failing one stay resident (the caller decides whether to discard).
        enclave = Enclave("tiny", memory_limit_bytes=1000)
        parameters = [self._parameter(50, "fits"), self._parameter(200, "too_big")]
        with pytest.raises(EnclaveMemoryError):
            enclave.seal_parameters(parameters, prefix="stem.")
        assert enclave.sealed_keys() == ["stem.fits.0"]
        assert enclave.used_bytes == 50 * 8

    def test_reseal_same_key_accounts_the_delta_only(self):
        enclave = Enclave("tiny", memory_limit_bytes=1000)
        enclave.seal("w", np.zeros(100))  # 800 bytes of the 1000 budget
        # Re-sealing the same key replaces the old bytes: still only 800.
        enclave.seal("w", np.ones(100))
        assert enclave.used_bytes == 800
        np.testing.assert_array_equal(enclave.unseal("w", authorized=True), np.ones(100))

    def test_reseal_growth_beyond_budget_raises_and_keeps_old_value(self):
        enclave = Enclave("tiny", memory_limit_bytes=1000)
        enclave.seal("w", np.zeros(100))
        with pytest.raises(EnclaveMemoryError):
            enclave.seal("w", np.zeros(200))
        np.testing.assert_array_equal(enclave.unseal("w", authorized=True), np.zeros(100))

    def test_unenforced_enclave_seals_over_budget(self):
        enclave = Enclave("loose", memory_limit_bytes=8, enforce_limit=False)
        sealed = enclave.seal_parameters([self._parameter(100, "w")])
        assert sealed == 800
        assert enclave.used_bytes == 800
        enclave.check_capacity()  # never raises while enforcement is off

    def test_check_capacity_failure_during_shielded_model_construction(self):
        from repro.core.shielded_model import ShieldedModel
        from repro.models.simple import SimpleCNN, SimpleCNNConfig

        model = SimpleCNN(
            SimpleCNNConfig(in_channels=3, num_classes=4, widths=(4, 8), image_size=8)
        )
        starved = Enclave("starved", memory_limit_bytes=16)
        with pytest.raises(EnclaveMemoryError):
            ShieldedModel(model, enclave=starved)
