"""Shared fixtures for the test suite.

Every fixture is deliberately tiny (small images, few samples, shallow
models) so that the whole suite runs in a couple of minutes on a laptop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageConfig, SyntheticImageDataset
from repro.models.simple import MLPClassifier, SimpleCNN, SimpleCNNConfig
from repro.models.vit import ViTConfig, VisionTransformer
from repro.nn.trainer import fit_classifier
from repro.utils.rng import set_global_seed


@pytest.fixture(autouse=True)
def _seeded():
    """Reset the global RNG registry before every test for reproducibility."""
    set_global_seed(1234)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A test-local random generator."""
    return np.random.default_rng(7)


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticImageDataset:
    """A 4-class dataset of 3x16x16 images, small enough to train in seconds."""
    return SyntheticImageDataset(
        SyntheticImageConfig(
            name="tiny",
            num_classes=4,
            image_size=16,
            channels=3,
            train_per_class=24,
            test_per_class=10,
            prototype_resolution=4,
        )
    )


def _make_tiny_cnn(num_classes: int = 4, image_size: int = 16) -> SimpleCNN:
    return SimpleCNN(
        SimpleCNNConfig(
            in_channels=3, num_classes=num_classes, widths=(8, 16), image_size=image_size
        )
    )


def _make_tiny_vit(num_classes: int = 4, image_size: int = 16) -> VisionTransformer:
    return VisionTransformer(
        ViTConfig(
            image_size=image_size,
            patch_size=4,
            in_channels=3,
            num_classes=num_classes,
            dim=16,
            depth=2,
            num_heads=2,
        )
    )


@pytest.fixture
def tiny_cnn_factory():
    """Factory building an untrained tiny CNN (used by FL tests)."""
    return _make_tiny_cnn


@pytest.fixture
def tiny_vit_factory():
    """Factory building an untrained tiny ViT."""
    return _make_tiny_vit


@pytest.fixture(scope="session")
def trained_tiny_cnn(tiny_dataset) -> SimpleCNN:
    """A tiny CNN trained on the tiny dataset (shared across tests)."""
    set_global_seed(99)
    model = _make_tiny_cnn()
    fit_classifier(
        model,
        tiny_dataset.train_images,
        tiny_dataset.train_labels,
        epochs=4,
        batch_size=24,
        lr=3e-3,
    )
    return model


@pytest.fixture(scope="session")
def trained_tiny_vit(tiny_dataset) -> VisionTransformer:
    """A tiny ViT trained on the tiny dataset (shared across tests)."""
    set_global_seed(98)
    model = _make_tiny_vit()
    fit_classifier(
        model,
        tiny_dataset.train_images,
        tiny_dataset.train_labels,
        epochs=4,
        batch_size=24,
        lr=3e-3,
    )
    return model


@pytest.fixture
def small_batch(tiny_dataset) -> tuple[np.ndarray, np.ndarray]:
    """A small labelled batch from the tiny dataset's test split."""
    return tiny_dataset.test_images[:8], tiny_dataset.test_labels[:8]
